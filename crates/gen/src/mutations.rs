//! Seeded mutation-stream generator for the incremental re-scheduling engine.
//!
//! [`mutation_stream`] turns any benchmark DAG into a reproducible stream of
//! [`DagDelta`]s — reweights, edge insertions/removals, node additions and
//! removals — that is **valid by construction**: the generator applies every
//! candidate delta to a private mirror of the graph (via the same
//! [`CompDag::apply_delta`] path consumers use) and only emits the ones the
//! mirror accepts, so replaying the returned stream in order never fails.
//!
//! The streams preserve the structural conventions of the benchmark families:
//!
//! * **sources stay sources-only inputs** — a reweight never changes a source's
//!   compute weight, and an edge removal never strips the last parent of a
//!   non-source (which would turn a compute-weighted node into an input);
//! * **feasibility is preserved** — no delta pushes any node's compute
//!   footprint above [`MutationStreamConfig::footprint_cap`] (by default the
//!   graph's minimal feasible cache size `r₀` at stream start), so an instance
//!   built with `r ≥ r₀` stays schedulable across the whole stream;
//! * **node removals are self-contained** — the incident `RemoveEdge` deltas
//!   are emitted before the `RemoveNode`, matching the isolation requirement
//!   of [`CompDag::apply_delta`].
//!
//! [`MutationStreamConfig::locality`] restricts the mutated nodes to a
//! contiguous window of the topological order, which models the streaming
//! setting (updates arrive at the frontier of the computation) and is what
//! makes dirty-cone repair profitable: a localized delta stream dirties only
//! a few of the topological shards.

use mbsp_dag::{CompDag, DagDelta, DagError, NodeId, NodeWeights, PkOrder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Why a mutation stream could not be generated. Returned by
/// [`try_mutation_stream`]; the panicking [`mutation_stream`] wrapper keeps
/// the original assert-style contract for test-internal callers.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// `config.ops == 0`.
    EmptyStream,
    /// The source DAG has no nodes.
    EmptyGraph,
    /// `config.locality` is outside `(0, 1]`.
    BadLocality(f64),
    /// The generator exhausted its attempt budget without emitting a single
    /// delta (the footprint cap or the family invariants are too tight).
    Starved,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::EmptyStream => write!(f, "an empty stream is not a stream"),
            StreamError::EmptyGraph => write!(f, "cannot mutate an empty graph"),
            StreamError::BadLocality(l) => {
                write!(f, "locality {l} must be a fraction in (0, 1]")
            }
            StreamError::Starved => write!(
                f,
                "mutation stream generation starved (cap or invariants too tight)"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Configuration of a [`mutation_stream`].
#[derive(Debug, Clone, Copy)]
pub struct MutationStreamConfig {
    /// Number of deltas to emit (compound operations — node add/remove — count
    /// each of their deltas against this budget).
    pub ops: usize,
    /// When false, the stream is reweight-only: node ids stay stable, which is
    /// what the evaluator dirty-set differential suite needs.
    pub structural: bool,
    /// Reweights and new nodes draw compute weights from `{1..max_compute}`.
    pub max_compute: u32,
    /// Reweights and new nodes draw memory weights from `{1..max_memory}`.
    pub max_memory: u32,
    /// Upper bound on any node's compute footprint after every delta; values
    /// `<= 0` derive the mirror's minimal feasible cache size `r₀` at stream
    /// start (so instances built with `r ≥ r₀` stay feasible).
    pub footprint_cap: f64,
    /// Fraction `(0, 1]` of the nodes eligible for mutation, taken as one
    /// contiguous window of the topological order; `1.0` means the whole graph.
    pub locality: f64,
}

impl Default for MutationStreamConfig {
    fn default() -> Self {
        MutationStreamConfig {
            ops: 32,
            structural: true,
            max_compute: 3,
            max_memory: 5,
            footprint_cap: 0.0,
            locality: 1.0,
        }
    }
}

/// Generates a seeded, replayable [`DagDelta`] stream for `dag`.
///
/// Deterministic in `(dag, config, seed)`. The returned deltas apply cleanly
/// in order via [`CompDag::apply_delta`] starting from `dag` (with a
/// [`PkOrder`] built by [`PkOrder::of_dag`]); the generator maintains its own
/// mirror and silently skips candidate mutations that would close a cycle,
/// duplicate an edge or violate the invariants listed in the module docs.
///
/// # Panics
/// Panics if `config.ops == 0`, `dag` is empty, or `config.locality` is not in
/// `(0, 1]`. Externally-driven callers (configs or graphs arriving from files
/// or over a boundary) should use [`try_mutation_stream`] instead.
pub fn mutation_stream(dag: &CompDag, config: &MutationStreamConfig, seed: u64) -> Vec<DagDelta> {
    try_mutation_stream(dag, config, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// The total variant of [`mutation_stream`]: every invalid input or starved
/// generation surfaces as a typed [`StreamError`] instead of a panic.
pub fn try_mutation_stream(
    dag: &CompDag,
    config: &MutationStreamConfig,
    seed: u64,
) -> Result<Vec<DagDelta>, StreamError> {
    if config.ops == 0 {
        return Err(StreamError::EmptyStream);
    }
    if dag.is_empty() {
        return Err(StreamError::EmptyGraph);
    }
    if !(config.locality > 0.0 && config.locality <= 1.0) {
        return Err(StreamError::BadLocality(config.locality));
    }
    let mut mirror = dag.clone();
    let mut order = PkOrder::of_dag(&mirror);
    let cap = if config.footprint_cap > 0.0 {
        config.footprint_cap
    } else {
        mirror.minimal_cache_size().max(1.0)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = mirror.num_nodes();
    let mut pool: Vec<NodeId> = if config.locality >= 1.0 {
        mirror.nodes().collect()
    } else {
        let topo = mbsp_dag::TopologicalOrder::of(&mirror);
        let w = ((n as f64 * config.locality).ceil() as usize).clamp(1, n);
        let start = rng.gen_range(0..=(n - w));
        topo.order()[start..start + w].to_vec()
    };

    let mut deltas: Vec<DagDelta> = Vec::with_capacity(config.ops);
    let mut attempts = 0usize;
    let max_attempts = config.ops * 64 + 256;
    while deltas.len() < config.ops && attempts < max_attempts && !pool.is_empty() {
        attempts += 1;
        let roll = if config.structural {
            rng.gen_range(0..100u32)
        } else {
            0
        };
        let pick = rng.gen_range(0..pool.len());
        let v = pool[pick];
        match roll {
            // Reweight: fresh weights, sources keep their compute weight.
            0..=34 => {
                let compute = if mirror.is_source(v) {
                    mirror.compute_weight(v)
                } else {
                    rng.gen_range(1..=config.max_compute.max(1)) as f64
                };
                let memory = rng.gen_range(1..=config.max_memory.max(1)) as f64;
                let grow = memory - mirror.memory_weight(v);
                if mirror.compute_footprint(v) + grow > cap + 1e-9 {
                    continue;
                }
                if mirror
                    .children(v)
                    .iter()
                    .any(|&c| mirror.compute_footprint(c) + grow > cap + 1e-9)
                {
                    continue;
                }
                let delta = DagDelta::Reweight {
                    node: v,
                    weights: NodeWeights::new(compute, memory),
                };
                mirror
                    .apply_delta(&delta, &mut order)
                    .expect("pre-validated reweight");
                deltas.push(delta);
            }
            // Edge insertion between two pool nodes; cycles are skipped.
            35..=59 => {
                let u = pool[rng.gen_range(0..pool.len())];
                if u == v || mirror.has_edge(u, v) {
                    continue;
                }
                if mirror.compute_footprint(v) + mirror.memory_weight(u) > cap + 1e-9 {
                    continue;
                }
                let delta = DagDelta::AddEdge { from: u, to: v };
                match mirror.apply_delta(&delta, &mut order) {
                    Ok(_) => deltas.push(delta),
                    Err(DagError::CycleDetected { .. }) => continue,
                    Err(e) => unreachable!("pre-validated edge insertion failed: {e}"),
                }
            }
            // Edge removal, keeping every non-source at least one parent.
            60..=74 => {
                let outd = mirror.out_degree(v);
                if outd == 0 {
                    continue;
                }
                let c = mirror.children(v)[rng.gen_range(0..outd)];
                if mirror.in_degree(c) <= 1 {
                    continue;
                }
                let delta = DagDelta::RemoveEdge { from: v, to: c };
                mirror
                    .apply_delta(&delta, &mut order)
                    .expect("the edge was just observed");
                deltas.push(delta);
            }
            // Node addition, immediately wired under a pool parent so the new
            // node is a proper computed sink rather than a floating input.
            75..=87 => {
                if deltas.len() + 2 > config.ops {
                    continue;
                }
                let memory = rng.gen_range(1..=config.max_memory.max(1)) as f64;
                if memory + mirror.memory_weight(v) > cap + 1e-9 {
                    continue;
                }
                let compute = rng.gen_range(1..=config.max_compute.max(1)) as f64;
                let add = DagDelta::AddNode {
                    weights: NodeWeights::new(compute, memory),
                    label: None,
                };
                let eff = mirror
                    .apply_delta(&add, &mut order)
                    .expect("a fresh node always fits");
                let fresh = eff.added.expect("AddNode reports the new id");
                deltas.push(add);
                let wire = DagDelta::AddEdge { from: v, to: fresh };
                mirror
                    .apply_delta(&wire, &mut order)
                    .expect("an edge onto a fresh sink cannot close a cycle");
                deltas.push(wire);
                pool.push(fresh);
            }
            // Node removal: incident edges first, then the (isolated) node.
            _ => {
                if mirror.num_nodes() <= 2 {
                    continue;
                }
                let (ind, outd) = (mirror.in_degree(v), mirror.out_degree(v));
                if ind + outd > 4 || deltas.len() + ind + outd + 1 > config.ops {
                    continue;
                }
                if mirror.children(v).iter().any(|&c| mirror.in_degree(c) <= 1) {
                    continue;
                }
                let parents: Vec<NodeId> = mirror.parents(v).to_vec();
                let children: Vec<NodeId> = mirror.children(v).to_vec();
                for &p in &parents {
                    let delta = DagDelta::RemoveEdge { from: p, to: v };
                    mirror
                        .apply_delta(&delta, &mut order)
                        .expect("incident edge exists");
                    deltas.push(delta);
                }
                for &c in &children {
                    let delta = DagDelta::RemoveEdge { from: v, to: c };
                    mirror
                        .apply_delta(&delta, &mut order)
                        .expect("incident edge exists");
                    deltas.push(delta);
                }
                let old_last = NodeId::new(mirror.num_nodes() - 1);
                let delta = DagDelta::RemoveNode { node: v };
                mirror
                    .apply_delta(&delta, &mut order)
                    .expect("the node was just isolated");
                deltas.push(delta);
                // Mirror the swap-remove id semantics in the candidate pool.
                pool.retain(|&x| x != v);
                if old_last != v {
                    for x in pool.iter_mut() {
                        if *x == old_last {
                            *x = v;
                        }
                    }
                }
            }
        }
    }
    if deltas.is_empty() {
        return Err(StreamError::Starved);
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_layered_dag, RandomDagConfig};

    fn base_dag() -> CompDag {
        random_layered_dag(
            &RandomDagConfig {
                layers: 6,
                width: 10,
                edge_probability: 0.2,
                ..Default::default()
            },
            11,
        )
    }

    #[test]
    fn streams_are_deterministic_and_replayable() {
        let dag = base_dag();
        let config = MutationStreamConfig {
            ops: 40,
            ..Default::default()
        };
        let a = mutation_stream(&dag, &config, 3);
        let b = mutation_stream(&dag, &config, 3);
        assert_eq!(a, b, "same seed must give the same stream");
        let c = mutation_stream(&dag, &config, 4);
        assert_ne!(a, c, "different seeds should diverge");
        // Replay cleanly on a fresh copy.
        let mut replay = dag.clone();
        let mut order = PkOrder::of_dag(&replay);
        for delta in &a {
            replay.apply_delta(delta, &mut order).unwrap();
        }
        assert!(replay.is_acyclic());
        assert!(order.is_valid_for(&replay));
    }

    #[test]
    fn streams_preserve_family_invariants() {
        let dag = base_dag();
        let cap = dag.minimal_cache_size();
        let config = MutationStreamConfig {
            ops: 60,
            ..Default::default()
        };
        for seed in 0..5u64 {
            let mut replay = dag.clone();
            let mut order = PkOrder::of_dag(&replay);
            for delta in mutation_stream(&dag, &config, seed) {
                replay.apply_delta(&delta, &mut order).unwrap();
                // Feasibility: the cap derived at stream start is never exceeded.
                assert!(
                    replay.minimal_cache_size() <= cap + 1e-9,
                    "seed {seed}: footprint cap violated"
                );
            }
            // Every source still has compute weight 0 (inputs are not computed).
            for v in replay.source_nodes() {
                assert_eq!(
                    replay.compute_weight(v),
                    0.0,
                    "seed {seed}: a compute-weighted node became a source"
                );
            }
        }
    }

    #[test]
    fn reweight_only_streams_keep_ids_stable() {
        let dag = base_dag();
        let config = MutationStreamConfig {
            ops: 25,
            structural: false,
            ..Default::default()
        };
        let stream = mutation_stream(&dag, &config, 9);
        assert_eq!(stream.len(), 25);
        assert!(stream
            .iter()
            .all(|d| matches!(d, DagDelta::Reweight { .. })));
    }

    #[test]
    fn invalid_inputs_surface_as_typed_errors() {
        let dag = base_dag();
        let empty_ops = MutationStreamConfig {
            ops: 0,
            ..Default::default()
        };
        assert_eq!(
            try_mutation_stream(&dag, &empty_ops, 1),
            Err(StreamError::EmptyStream)
        );
        let bad_locality = MutationStreamConfig {
            locality: 1.5,
            ..Default::default()
        };
        assert_eq!(
            try_mutation_stream(&dag, &bad_locality, 1),
            Err(StreamError::BadLocality(1.5))
        );
        let starving = MutationStreamConfig {
            structural: false,
            footprint_cap: 1e-12,
            ..Default::default()
        };
        assert_eq!(
            try_mutation_stream(&dag, &starving, 1),
            Err(StreamError::Starved)
        );
    }

    #[test]
    fn locality_restricts_the_mutated_window() {
        let dag = base_dag();
        let n = dag.num_nodes();
        let config = MutationStreamConfig {
            ops: 20,
            structural: false,
            locality: 0.2,
            ..Default::default()
        };
        let stream = mutation_stream(&dag, &config, 5);
        let mut touched: Vec<usize> = stream
            .iter()
            .map(|d| match d {
                DagDelta::Reweight { node, .. } => node.index(),
                _ => unreachable!("reweight-only stream"),
            })
            .collect();
        touched.sort_unstable();
        touched.dedup();
        assert!(
            touched.len() <= (n as f64 * 0.2).ceil() as usize,
            "locality window leaked: {} distinct nodes touched",
            touched.len()
        );
    }
}
