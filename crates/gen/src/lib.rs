//! # mbsp-gen — benchmark DAG generators and paper constructions
//!
//! The paper evaluates its schedulers on the computational-DAG benchmark of
//! Papp et al. (SPAA 2024): a "tiny" dataset of 15 DAGs with 40–80 nodes (three
//! coarse-grained algorithm graphs plus fine-grained CG, SpMV, iterated SpMV and
//! k-NN instances) and a sample of 10 larger DAGs with 264–464 nodes. The original
//! dataset files are not redistributable, so this crate generates synthetic DAGs of
//! the same families, sizes and structure (see DESIGN.md, substitution 2):
//!
//! * [`spmv`] — fine-grained sparse matrix–vector multiplication and iterated SpMV;
//! * [`cg`] — fine-grained conjugate-gradient iterations on a 2D grid;
//! * [`knn`] — fine-grained k-nearest-neighbour computations;
//! * [`coarse`] — coarse-grained representations of BiCGSTAB, k-means and Pregel;
//! * [`datasets`] — the named "tiny" and "small-sample" instance collections with
//!   the paper's random memory weights in `{1..5}`;
//! * [`constructions`] — the parametric gadget DAGs of Theorem 4.1 and
//!   Lemmas 5.3, 5.4 and 6.1;
//! * [`random`] — random layered DAGs for property-based testing;
//! * [`mutations`] — seeded, replayable `DagDelta` streams over any of the
//!   above, feeding the incremental re-scheduling engine and its
//!   mutation-replay differential suite;
//! * [`faults`] — seeded fault-injection plans (worker panics, checkpoint
//!   corruption, invalid deltas) driving the engine's robustness soak tests.

pub mod cg;
pub mod coarse;
pub mod constructions;
pub mod datasets;
pub mod faults;
pub mod knn;
pub mod mutations;
pub mod random;
pub mod spmv;
pub mod weights;

pub use datasets::{large_dataset, small_dataset_sample, tiny_dataset, NamedInstance};
pub use faults::{Corruption, FaultPlan};
pub use mutations::{mutation_stream, try_mutation_stream, MutationStreamConfig, StreamError};
pub use weights::assign_random_memory_weights;
