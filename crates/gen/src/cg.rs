//! Fine-grained conjugate-gradient (CG) iteration DAGs.
//!
//! The `CG_N{n}_K{k}` instances of the benchmark represent `k` iterations of the
//! conjugate-gradient method on a sparse system arising from an `n × n` 2D grid
//! (5-point stencil). Each iteration consists of
//!
//! 1. a stencil SpMV `q = A·p` (one node per grid point, reading the point and its
//!    grid neighbours),
//! 2. a dot-product reduction `p·q` (binary reduction tree),
//! 3. an axpy update of the iterate `x` and residual `r` (one node per grid point),
//! 4. a second dot product `r·r` and the scalar update of the search direction `p`.
//!
//! The generator reproduces this structure; scalar nodes get compute weight 1,
//! per-point nodes get compute weight 1, and reduction nodes weight 1. Memory
//! weights are assigned later by the dataset layer.

use mbsp_dag::{CompDag, DagBuilder, NodeId};

/// Generates a fine-grained CG DAG on an `n × n` grid for `k` iterations.
pub fn cg_dag(name: &str, n: usize, k: usize) -> CompDag {
    assert!(n >= 2, "the grid needs at least 2x2 points");
    assert!(k >= 1, "at least one CG iteration is required");
    let points = n * n;
    let mut b = DagBuilder::new(name);

    // Initial search direction p_0 and residual r_0: source nodes per grid point.
    let mut p_vec: Vec<NodeId> = (0..points)
        .map(|i| b.add_labeled_node(0.0, 1.0, format!("p0_{i}")).unwrap())
        .collect();
    let mut r_vec: Vec<NodeId> = (0..points)
        .map(|i| b.add_labeled_node(0.0, 1.0, format!("r0_{i}")).unwrap())
        .collect();

    for it in 0..k {
        // 1. Stencil SpMV q = A p : each q_i reads p_i and its grid neighbours.
        let q_vec: Vec<NodeId> = (0..points)
            .map(|i| {
                let q = b
                    .add_labeled_node(1.0, 1.0, format!("it{it}_q{i}"))
                    .unwrap();
                for nb in stencil_neighbours(i, n) {
                    b.add_edge(p_vec[nb], q).unwrap();
                }
                q
            })
            .collect();

        // 2. Dot product alpha = (p, q): binary reduction over per-point products.
        let pq: Vec<NodeId> = (0..points)
            .map(|i| {
                let m = b
                    .add_labeled_node(1.0, 1.0, format!("it{it}_pq{i}"))
                    .unwrap();
                b.add_edge(p_vec[i], m).unwrap();
                b.add_edge(q_vec[i], m).unwrap();
                m
            })
            .collect();
        let alpha = reduce_binary(&mut b, &pq, &format!("it{it}_alpha"));

        // 3. axpy updates: r_{t+1,i} depends on r_i, q_i and alpha.
        let new_r: Vec<NodeId> = (0..points)
            .map(|i| {
                let node = b
                    .add_labeled_node(1.0, 1.0, format!("it{it}_r{i}"))
                    .unwrap();
                b.add_edge(r_vec[i], node).unwrap();
                b.add_edge(q_vec[i], node).unwrap();
                b.add_edge(alpha, node).unwrap();
                node
            })
            .collect();

        // 4. beta = (r_{t+1}, r_{t+1}) and the new search direction p_{t+1}.
        let rr: Vec<NodeId> = (0..points)
            .map(|i| {
                let m = b
                    .add_labeled_node(1.0, 1.0, format!("it{it}_rr{i}"))
                    .unwrap();
                b.add_edge(new_r[i], m).unwrap();
                m
            })
            .collect();
        let beta = reduce_binary(&mut b, &rr, &format!("it{it}_beta"));
        let new_p: Vec<NodeId> = (0..points)
            .map(|i| {
                let node = b
                    .add_labeled_node(1.0, 1.0, format!("it{it}_p{i}"))
                    .unwrap();
                b.add_edge(p_vec[i], node).unwrap();
                b.add_edge(new_r[i], node).unwrap();
                b.add_edge(beta, node).unwrap();
                node
            })
            .collect();

        p_vec = new_p;
        r_vec = new_r;
    }
    b.build()
}

/// 5-point stencil neighbourhood of grid point `i` on an `n × n` grid (including the
/// point itself).
fn stencil_neighbours(i: usize, n: usize) -> Vec<usize> {
    let (row, col) = (i / n, i % n);
    let mut out = vec![i];
    if row > 0 {
        out.push(i - n);
    }
    if row + 1 < n {
        out.push(i + n);
    }
    if col > 0 {
        out.push(i - 1);
    }
    if col + 1 < n {
        out.push(i + 1);
    }
    out
}

/// Builds a binary reduction tree over `inputs`, returning the root node.
pub(crate) fn reduce_binary(b: &mut DagBuilder, inputs: &[NodeId], prefix: &str) -> NodeId {
    assert!(!inputs.is_empty());
    let mut layer: Vec<NodeId> = inputs.to_vec();
    let mut depth = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (k, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 1 {
                next.push(pair[0]);
            } else {
                let node = b
                    .add_labeled_node(1.0, 1.0, format!("{prefix}_red{depth}_{k}"))
                    .unwrap();
                b.add_edge(pair[0], node).unwrap();
                b.add_edge(pair[1], node).unwrap();
                next.push(node);
            }
        }
        layer = next;
        depth += 1;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_dag::DagStatistics;

    #[test]
    fn cg_dag_basic_shape() {
        let d = cg_dag("CG_N2_K2", 2, 2);
        let stats = DagStatistics::of(&d);
        assert!(d.is_acyclic());
        // 2x2 grid: 8 sources (p and r), per iteration 4q + 4pq + reductions + 4r +
        // 4rr + reductions + 4p.
        assert_eq!(stats.num_sources, 8);
        assert!(stats.num_nodes > 40);
        assert!(stats.num_levels > 6);
    }

    #[test]
    fn more_iterations_mean_deeper_dags() {
        let d1 = cg_dag("cg1", 3, 1);
        let d2 = cg_dag("cg2", 3, 2);
        assert!(d2.num_nodes() > d1.num_nodes());
        assert!(DagStatistics::of(&d2).num_levels > DagStatistics::of(&d1).num_levels);
    }

    #[test]
    fn stencil_neighbourhood_sizes() {
        // Corner has 3 neighbours (incl. itself), edge 4, interior 5.
        assert_eq!(stencil_neighbours(0, 3).len(), 3);
        assert_eq!(stencil_neighbours(1, 3).len(), 4);
        assert_eq!(stencil_neighbours(4, 3).len(), 5);
    }

    #[test]
    fn reduction_tree_is_logarithmic() {
        let mut b = DagBuilder::new("red");
        let inputs = b.add_unit_nodes(8).unwrap();
        let root = reduce_binary(&mut b, &inputs, "t");
        let dag = b.build();
        // 8 leaves -> 7 internal nodes.
        assert_eq!(dag.num_nodes(), 15);
        assert!(dag.is_sink(root));
        let stats = DagStatistics::of(&dag);
        assert_eq!(stats.num_levels, 4);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_grid() {
        cg_dag("bad", 1, 1);
    }
}
