//! Seeded fault-injection plans for the engine's robustness soak tests.
//!
//! A [`FaultPlan`] is pure data: given a seed and the length of a mutation
//! stream, it deterministically picks the operation indices at which the soak
//! harness injects each fault class —
//!
//! * **worker panics** — before applying the operation, the harness submits a
//!   poisoned batch to the scheduler's worker pool, exercising panic isolation
//!   and respawn (`mbsp_pool`);
//! * **checkpoint corruption** — the harness checkpoints the session, applies
//!   the planned [`Corruption`] (truncation at a chosen offset, or a single
//!   bit flip) and asserts the restore is rejected with a typed error while
//!   the live session continues unharmed;
//! * **invalid deltas** — the harness interleaves an out-of-range or
//!   self-referential [`DagDelta`] (see
//!   [`FaultPlan::invalid_delta`]) and asserts it is rejected without mutating
//!   the session.
//!
//! The plan owns no I/O and no threads, so the same `(seed, ops)` pair replays
//! the exact fault schedule on any machine — which is what lets CI pin a fixed
//! seed matrix.

use mbsp_dag::{DagDelta, NodeId, NodeWeights};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One way to damage a checkpoint blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the blob after `offset` bytes (modulo the blob length, so every
    /// planned offset lands inside the blob).
    Truncate {
        /// Preserved prefix length before reduction modulo the blob length.
        offset: usize,
    },
    /// Flip one bit of one byte.
    BitFlip {
        /// Byte position before reduction modulo the blob length.
        offset: usize,
        /// Bit index in `0..8`.
        bit: u8,
    },
}

impl Corruption {
    /// Applies the corruption to a copy of `blob`. Empty blobs are returned
    /// unchanged (there is nothing to damage).
    pub fn apply(&self, blob: &[u8]) -> Vec<u8> {
        let mut out = blob.to_vec();
        if out.is_empty() {
            return out;
        }
        match *self {
            Corruption::Truncate { offset } => {
                out.truncate(offset % out.len());
            }
            Corruption::BitFlip { offset, bit } => {
                let pos = offset % out.len();
                out[pos] ^= 1 << (bit % 8);
            }
        }
        out
    }
}

/// A deterministic schedule of fault injections over a stream of `ops`
/// operations. See the module docs for how each class is meant to be driven.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Operation indices before which a worker panic is injected (sorted,
    /// deduplicated).
    pub panic_ops: Vec<usize>,
    /// Operation indices at which the session checkpoint is corrupted, with
    /// the damage to apply (sorted by index, at most one per index).
    pub corrupt_ops: Vec<(usize, Corruption)>,
    /// Operation indices before which an invalid delta is interleaved
    /// (sorted, deduplicated).
    pub invalid_delta_ops: Vec<usize>,
}

impl FaultPlan {
    /// Draws a plan for a stream of `ops` operations: roughly one fault of
    /// each class per eight operations, at least one of each class whenever
    /// `ops > 0`. Deterministic in `(seed, ops)`.
    pub fn seeded(seed: u64, ops: usize) -> FaultPlan {
        if ops == 0 {
            return FaultPlan::default();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let per_class = (ops / 8).max(1);
        let draw = |rng: &mut ChaCha8Rng| -> Vec<usize> {
            let mut v: Vec<usize> = (0..per_class).map(|_| rng.gen_range(0..ops)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let panic_ops = draw(&mut rng);
        let corrupt_ops = draw(&mut rng)
            .into_iter()
            .map(|op| {
                let corruption = if rng.gen_bool(0.5) {
                    Corruption::Truncate {
                        offset: rng.gen_range(0..usize::MAX),
                    }
                } else {
                    Corruption::BitFlip {
                        offset: rng.gen_range(0..usize::MAX),
                        bit: rng.gen_range(0..8),
                    }
                };
                (op, corruption)
            })
            .collect();
        let invalid_delta_ops = draw(&mut rng);
        FaultPlan {
            panic_ops,
            corrupt_ops,
            invalid_delta_ops,
        }
    }

    /// True when a worker panic is planned before operation `op`.
    pub fn panics_at(&self, op: usize) -> bool {
        self.panic_ops.binary_search(&op).is_ok()
    }

    /// The checkpoint corruption planned at operation `op`, if any.
    pub fn corruption_at(&self, op: usize) -> Option<Corruption> {
        self.corrupt_ops
            .binary_search_by_key(&op, |&(i, _)| i)
            .ok()
            .map(|i| self.corrupt_ops[i].1)
    }

    /// True when an invalid delta is planned before operation `op`.
    pub fn invalid_delta_at(&self, op: usize) -> bool {
        self.invalid_delta_ops.binary_search(&op).is_ok()
    }

    /// An invalid [`DagDelta`] for a graph of `num_nodes` nodes, rotating
    /// through the rejection paths: an out-of-range reweight, an out-of-range
    /// edge and a self-loop. Every variant must be refused by
    /// [`CompDag::apply_delta`](mbsp_dag::CompDag::apply_delta) without
    /// mutating the graph.
    pub fn invalid_delta(op: usize, num_nodes: usize) -> DagDelta {
        let missing = NodeId::new(num_nodes + 1 + op);
        match op % 3 {
            0 => DagDelta::Reweight {
                node: missing,
                weights: NodeWeights::new(1.0, 1.0),
            },
            1 => DagDelta::AddEdge {
                from: NodeId::new(0),
                to: missing,
            },
            _ => DagDelta::AddEdge {
                from: NodeId::new(0),
                to: NodeId::new(0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_dag::{CompDag, PkOrder};

    #[test]
    fn plans_are_deterministic_and_cover_every_class() {
        let a = FaultPlan::seeded(7, 64);
        let b = FaultPlan::seeded(7, 64);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(8, 64));
        assert!(!a.panic_ops.is_empty());
        assert!(!a.corrupt_ops.is_empty());
        assert!(!a.invalid_delta_ops.is_empty());
        assert!(a.panic_ops.iter().all(|&op| op < 64));
        assert!(a.corrupt_ops.iter().all(|&(op, _)| op < 64));
        assert!(a.invalid_delta_ops.iter().all(|&op| op < 64));
        assert_eq!(FaultPlan::seeded(7, 0), FaultPlan::default());
    }

    #[test]
    fn corruption_damages_exactly_as_planned() {
        let blob: Vec<u8> = (0..32u8).collect();
        let cut = Corruption::Truncate { offset: 100 }.apply(&blob);
        assert_eq!(cut, blob[..100 % 32].to_vec());
        let flipped = Corruption::BitFlip { offset: 5, bit: 3 }.apply(&blob);
        assert_eq!(flipped[5], blob[5] ^ 0b1000);
        assert_eq!(flipped.len(), blob.len());
        assert!(Corruption::BitFlip { offset: 0, bit: 0 }
            .apply(&[])
            .is_empty());
    }

    #[test]
    fn invalid_deltas_are_always_rejected_without_mutation() {
        let weights = (0..4).map(|_| NodeWeights::new(1.0, 1.0)).collect();
        let dag = CompDag::from_edges("f", weights, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        for op in 0..9 {
            let mut probe = dag.clone();
            let mut order = PkOrder::of_dag(&probe);
            let delta = FaultPlan::invalid_delta(op, probe.num_nodes());
            assert!(
                probe.apply_delta(&delta, &mut order).is_err(),
                "op {op}: {delta:?} must be rejected"
            );
            assert_eq!(probe.num_edges(), dag.num_edges());
            assert_eq!(probe.num_nodes(), dag.num_nodes());
        }
    }
}
