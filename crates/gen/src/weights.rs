//! Memory-weight assignment.
//!
//! The benchmark DAGs of \[36\] (Papp et al., SPAA 2024) carry compute weights but no memory weights; the paper
//! assigns every node an independent uniformly random memory weight in `{1,...,5}`.
//! [`assign_random_memory_weights`] reproduces this with a seeded RNG so that every
//! run of the experiment harness sees the same instances.

use mbsp_dag::graph::NodeWeights;
use mbsp_dag::CompDag;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Assigns every node of `dag` an independent uniformly random memory weight drawn
/// from `{1, ..., max_weight}`, keeping its compute weight. Deterministic in `seed`.
pub fn assign_random_memory_weights(dag: &mut CompDag, max_weight: u32, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(1u32, max_weight.max(1));
    for v in dag.nodes().collect::<Vec<_>>() {
        let memory = dist.sample(&mut rng) as f64;
        let compute = dag.compute_weight(v);
        dag.set_weights(v, NodeWeights::new(compute, memory))
            .expect("weights are positive integers");
    }
}

/// Assigns every node a unit memory weight (used by the pure-pebbling experiments).
pub fn assign_unit_memory_weights(dag: &mut CompDag) {
    for v in dag.nodes().collect::<Vec<_>>() {
        let compute = dag.compute_weight(v);
        dag.set_weights(v, NodeWeights::new(compute, 1.0))
            .expect("unit weight is valid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_dag::DagBuilder;

    fn chain(n: usize) -> CompDag {
        let mut b = DagBuilder::new("chain");
        let nodes = b.add_unit_nodes(n).unwrap();
        b.add_chain(&nodes).unwrap();
        b.build()
    }

    #[test]
    fn weights_are_in_range_and_deterministic() {
        let mut d1 = chain(50);
        let mut d2 = chain(50);
        assign_random_memory_weights(&mut d1, 5, 42);
        assign_random_memory_weights(&mut d2, 5, 42);
        for v in d1.nodes() {
            let w = d1.memory_weight(v);
            assert!((1.0..=5.0).contains(&w));
            assert_eq!(w.fract(), 0.0);
            assert_eq!(w, d2.memory_weight(v));
            // Compute weights are untouched.
            assert_eq!(d1.compute_weight(v), 1.0);
        }
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let mut d1 = chain(50);
        let mut d2 = chain(50);
        assign_random_memory_weights(&mut d1, 5, 1);
        assign_random_memory_weights(&mut d2, 5, 2);
        let same = d1
            .nodes()
            .filter(|&v| d1.memory_weight(v) == d2.memory_weight(v))
            .count();
        assert!(same < 50, "two seeds should not produce identical weights");
    }

    #[test]
    fn unit_weights_override() {
        let mut d = chain(10);
        assign_random_memory_weights(&mut d, 5, 7);
        assign_unit_memory_weights(&mut d);
        assert!(d.nodes().all(|v| d.memory_weight(v) == 1.0));
    }
}
