//! Fine-grained SpMV and iterated SpMV ("exp") DAG generators.
//!
//! A sparse matrix–vector multiplication `y = A·x` is modelled at the granularity of
//! individual scalar operations: every vector entry `x_j` is a source node, every
//! nonzero `a_{ij}` contributes a multiplication node `a_{ij}·x_j`, and the products
//! of each row are accumulated by a chain of addition nodes ending in the row result
//! `y_i`. This reproduces the shape of the `spmv_N*` instances of the benchmark: wide
//! and shallow with heavy fan-in from the vector entries.
//!
//! The iterated SpMV ("exp", for `y = A^k x`) instances chain `k` SpMV layers: the
//! row results of iteration `t` become the vector entries of iteration `t + 1`.

use mbsp_dag::{CompDag, DagBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sparsity pattern of a square matrix: for each row, the sorted column indices of
/// its nonzeros. Every row and every column is guaranteed to contain at least one
/// nonzero (so that no vector entry is dead and no row result is trivial).
#[derive(Debug, Clone)]
pub struct SparsityPattern {
    /// `rows[i]` = sorted column indices of the nonzeros of row `i`.
    pub rows: Vec<Vec<usize>>,
}

impl SparsityPattern {
    /// Generates a random pattern for an `n × n` matrix with roughly `avg_nnz_per_row`
    /// nonzeros per row (minimum 1), deterministically in `seed`.
    pub fn random(n: usize, avg_nnz_per_row: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = vec![Vec::new(); n];
        // Ensure every column appears at least once by dealing a random permutation
        // of the columns across the rows first.
        let mut cols: Vec<usize> = (0..n).collect();
        cols.shuffle(&mut rng);
        for (i, &c) in cols.iter().enumerate() {
            rows[i % n].push(c);
        }
        // Then add random extra nonzeros up to the target density.
        let target_total = n * avg_nnz_per_row.max(1);
        let mut total: usize = rows.iter().map(|r| r.len()).sum();
        let mut guard = 0usize;
        while total < target_total && guard < 20 * target_total {
            guard += 1;
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if !rows[i].contains(&j) {
                rows[i].push(j);
                total += 1;
            }
        }
        for r in &mut rows {
            r.sort_unstable();
        }
        SparsityPattern { rows }
    }

    /// Number of rows/columns.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// Total number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }
}

/// Generates the fine-grained DAG of a single SpMV `y = A·x` for the given pattern.
///
/// Multiplication and addition nodes have compute weight 1; vector sources have
/// compute weight 0 (they are inputs). Memory weights are left at 1 and are
/// typically overridden by [`crate::assign_random_memory_weights`].
pub fn spmv_dag(name: &str, pattern: &SparsityPattern) -> CompDag {
    let mut b = DagBuilder::new(name);
    let n = pattern.n();
    // Vector entries x_j are source nodes.
    let x: Vec<NodeId> = (0..n)
        .map(|j| b.add_labeled_node(0.0, 1.0, format!("x{j}")).unwrap())
        .collect();
    for (i, cols) in pattern.rows.iter().enumerate() {
        append_row(&mut b, i, cols, &x, &format!("r{i}"));
    }
    b.build()
}

/// Generates the fine-grained DAG of an iterated SpMV `y = A^k x`.
///
/// The same sparsity pattern is applied `k` times; the row results of one iteration
/// are the vector entries of the next. The instance names in the paper are of the
/// form `exp_N{n}_K{k}`.
pub fn iterated_spmv_dag(name: &str, pattern: &SparsityPattern, iterations: usize) -> CompDag {
    assert!(iterations >= 1);
    let mut b = DagBuilder::new(name);
    let n = pattern.n();
    let mut current: Vec<NodeId> = (0..n)
        .map(|j| b.add_labeled_node(0.0, 1.0, format!("x{j}")).unwrap())
        .collect();
    for it in 0..iterations {
        let mut next = Vec::with_capacity(n);
        for (i, cols) in pattern.rows.iter().enumerate() {
            let y = append_row(&mut b, i, cols, &current, &format!("it{it}_r{i}"));
            next.push(y);
        }
        current = next;
    }
    b.build()
}

/// Adds the multiply/accumulate nodes of one matrix row and returns the row-result
/// node.
fn append_row(
    b: &mut DagBuilder,
    row: usize,
    cols: &[usize],
    x: &[NodeId],
    prefix: &str,
) -> NodeId {
    assert!(!cols.is_empty(), "row {row} has no nonzeros");
    // One multiplication node per nonzero.
    let products: Vec<NodeId> = cols
        .iter()
        .map(|&j| {
            let m = b
                .add_labeled_node(1.0, 1.0, format!("{prefix}_mul{j}"))
                .unwrap();
            b.add_edge(x[j], m).unwrap();
            m
        })
        .collect();
    // Accumulate the products with a chain of additions; a single product is the row
    // result directly.
    if products.len() == 1 {
        return products[0];
    }
    let mut acc = products[0];
    for (k, &m) in products.iter().enumerate().skip(1) {
        let add = b
            .add_labeled_node(1.0, 1.0, format!("{prefix}_add{k}"))
            .unwrap();
        b.add_edge(acc, add).unwrap();
        b.add_edge(m, add).unwrap();
        acc = add;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_dag::DagStatistics;

    #[test]
    fn pattern_covers_all_rows_and_columns() {
        let p = SparsityPattern::random(8, 3, 1);
        assert_eq!(p.n(), 8);
        assert!(p.nnz() >= 8);
        let mut col_seen = vec![false; 8];
        for (i, r) in p.rows.iter().enumerate() {
            assert!(!r.is_empty(), "row {i} empty");
            for &c in r {
                col_seen[c] = true;
            }
            // Sorted and unique.
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(&sorted, r);
        }
        assert!(col_seen.into_iter().all(|s| s));
    }

    #[test]
    fn pattern_is_deterministic() {
        let a = SparsityPattern::random(10, 3, 7);
        let b = SparsityPattern::random(10, 3, 7);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn spmv_dag_structure() {
        let p = SparsityPattern::random(6, 3, 2);
        let d = spmv_dag("spmv_test", &p);
        let stats = DagStatistics::of(&d);
        // n sources, nnz multiplies, and (nnz - n) adds at most.
        assert_eq!(stats.num_sources, 6);
        assert!(stats.num_nodes >= 6 + p.nnz());
        assert!(d.is_acyclic());
        // All sources have zero compute weight.
        for v in d.sources() {
            assert_eq!(d.compute_weight(v), 0.0);
        }
        // Every sink is a row result: at least one sink per row with >= 1 nonzero.
        assert!(stats.num_sinks >= 1);
    }

    #[test]
    fn iterated_spmv_layers_are_chained() {
        let p = SparsityPattern::random(5, 2, 3);
        let d1 = iterated_spmv_dag("exp1", &p, 1);
        let d3 = iterated_spmv_dag("exp3", &p, 3);
        assert!(d3.num_nodes() > 2 * d1.num_nodes());
        // Depth grows with the number of iterations.
        let s1 = DagStatistics::of(&d1);
        let s3 = DagStatistics::of(&d3);
        assert!(s3.num_levels > s1.num_levels);
        // Only the original x entries are sources (later layers consume row results).
        assert_eq!(s3.num_sources, 5);
    }

    #[test]
    #[should_panic]
    fn iterated_spmv_requires_at_least_one_iteration() {
        let p = SparsityPattern::random(3, 2, 0);
        iterated_spmv_dag("bad", &p, 0);
    }
}
