//! # mbsp-pool — the resident work-stealing worker pool
//!
//! Every parallel site of the workspace — the holistic engine's candidate
//! batches, the sharded search, the dirty-cone repairer, divide-and-conquer and
//! the bench sweeps — used to spawn fresh `std::thread::scope` threads per
//! batch, paying thread startup and teardown on every candidate round. This
//! crate replaces those sites with one **resident** pool in the Blumofe–Leiserson
//! work-stealing mould (the model `mbsp_sched::CilkScheduler` simulates):
//!
//! * **Capped, lazily spawned workers.** No thread exists until the first batch
//!   is submitted; workers are spawned up to the cap as demand appears. If the
//!   OS refuses a thread (`EAGAIN`), the cap falls back to the number of
//!   workers already running instead of panicking — batches still complete
//!   because submitting threads help execute queued jobs while they wait.
//! * **Per-worker injector deques with chase-lev-style stealing.** Each worker
//!   slot owns a deque; batches are injected round-robin. The owner pops
//!   newest-first from the back, thieves (other workers and waiting
//!   submitters) steal oldest-first from the front. Batch tasks are coarse
//!   (one engine chunk, one shard, one instance), so a mutex per deque stands
//!   in for the lock-free chase-lev array without measurable contention.
//! * **Scoped batches.** [`WorkerPool::run_batch`] submits a `Vec` of closures
//!   that may borrow from the caller's stack (like `std::thread::scope`) and
//!   blocks until every closure has run, returning the results **in submission
//!   order**. Worker count and steal interleaving therefore never change what a
//!   caller observes — the holistic engine's deterministic `(cost, index)`
//!   winner tie-break survives unchanged, as does every index-ordered sweep.
//! * **Panic propagation.** A panicking job does not poison the pool: the first
//!   payload is captured and re-thrown on the submitting thread after the rest
//!   of the batch has drained, mirroring `std::thread::scope`.
//!
//! The pool also owns the workspace's worker-count contract:
//! [`resolve_workers`] is the single implementation of the `MBSP_BENCH_THREADS`
//! environment-variable parse (an explicit positive count wins, then the
//! environment variable, then the machine's available parallelism — always at
//! least 1) that the five parallel sites previously each re-implemented.
//!
//! [`WorkerPool::shared`] hands out the process-wide pool that the schedulers
//! thread through `EvaluationEngine` batches, `ShardedHolisticScheduler`,
//! `IncrementalScheduler` and `DivideAndConquerScheduler`; isolated pools can
//! still be built with [`WorkerPool::with_capacity`] (tests use this to
//! exercise specific sizes).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Resolves the number of evaluation workers: an explicit positive `configured`
/// wins; otherwise the `MBSP_BENCH_THREADS` environment variable; otherwise the
/// machine's available parallelism. Always at least 1.
///
/// This is the one worker-count contract of the workspace — every parallel
/// site (engine batches, sharded search, dirty-cone repair, divide-and-conquer,
/// bench sweeps) resolves its worker count through this function, so
/// `MBSP_BENCH_THREADS=1` forces serial runs everywhere at once.
pub fn resolve_workers(configured: usize) -> usize {
    if configured >= 1 {
        return configured;
    }
    let env = std::env::var("MBSP_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1);
    env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A queued, lifetime-erased job. Soundness of the erasure rests on
/// [`WorkerPool::run_batch`] never returning before every job of its batch has
/// finished, so the borrows the closure carries outlive its execution.
type Job = Box<dyn FnOnce() + Send>;

/// State shared between the pool handle, its workers and waiting submitters.
struct Shared {
    /// Per-worker-slot injector deques (owner pops back, thieves pop front).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Spawn bookkeeping and the park/wake channel of idle workers.
    control: Mutex<Control>,
    /// Wakes parked workers on injection and on shutdown.
    wake: Condvar,
    /// Round-robin injection cursor.
    cursor: AtomicUsize,
}

struct Control {
    /// Workers spawned so far (they stay resident until shutdown).
    spawned: usize,
    /// Maximum workers this pool may spawn; shrinks on `EAGAIN`.
    cap: usize,
    /// True once a worker spawn failed and the cap was frozen at `spawned`.
    eagain_fallback: bool,
    shutdown: bool,
}

impl Shared {
    /// Pops a job for worker `me`: own deque newest-first, then steal
    /// oldest-first from the other deques.
    fn pop_for(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.queues[me].lock().unwrap().pop_back() {
            return Some(job);
        }
        let n = self.queues.len();
        for d in 1..n {
            if let Some(job) = self.queues[(me + d) % n].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Steals the oldest job of any deque (used by threads that are not pool
    /// workers: submitters helping while they wait for their batch).
    fn steal_any(&self) -> Option<Job> {
        for queue in &self.queues {
            if let Some(job) = queue.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_jobs(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }
}

/// Resident worker loop: run jobs while any are queued, park otherwise.
fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.pop_for(me) {
            job();
            continue;
        }
        let mut control = shared.control.lock().unwrap();
        if control.shutdown {
            return;
        }
        // Re-check under the control lock: an injection between the failed pop
        // and the lock acquisition must not be slept through (injectors notify
        // only after their push is visible).
        if shared.has_jobs() {
            continue;
        }
        control = shared.wake.wait(control).unwrap();
        if control.shutdown {
            return;
        }
    }
}

/// Progress of one in-flight batch, shared by its jobs and the submitter.
struct BatchState {
    progress: Mutex<BatchProgress>,
    done: Condvar,
}

struct BatchProgress {
    pending: usize,
    /// First panic payload of the batch (later ones are dropped, like
    /// `std::thread::scope` joining multiple panicked threads).
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Owns the worker handles; dropping the last pool handle shuts the workers
/// down and joins them.
struct PoolCore {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut control = self.shared.control.lock().unwrap();
            control.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// A cloneable handle to a resident work-stealing pool. All clones share the
/// same workers; the workers shut down when the last handle is dropped (the
/// [`WorkerPool::shared`] pool lives for the whole process).
#[derive(Clone)]
pub struct WorkerPool {
    core: Arc<PoolCore>,
}

impl Default for WorkerPool {
    /// The default handle is a clone of the process-wide [`WorkerPool::shared`]
    /// pool, so `SomeScheduler::default()` joins the resident workers instead of
    /// creating a private pool.
    fn default() -> Self {
        WorkerPool::shared().clone()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let control = self.core.shared.control.lock().unwrap();
        f.debug_struct("WorkerPool")
            .field("cap", &control.cap)
            .field("spawned", &control.spawned)
            .field("eagain_fallback", &control.eagain_fallback)
            .finish()
    }
}

/// Raw pointer wrapper so a job can carry its result slot across the thread
/// boundary; each job writes a distinct slot, and the batch join orders the
/// writes before any read.
struct SlotPtr<T>(*mut Option<T>);
unsafe impl<T: Send> Send for SlotPtr<T> {}

impl<T> SlotPtr<T> {
    /// # Safety
    /// The slot must be live, written by exactly one job, and read only after
    /// the batch join ordered the write.
    unsafe fn write(&self, value: T) {
        *self.0 = Some(value);
    }
}

impl WorkerPool {
    /// Creates an isolated pool capped at `cap` workers (at least 1). No thread
    /// is spawned until the first batch arrives.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        WorkerPool {
            core: Arc::new(PoolCore {
                shared: Arc::new(Shared {
                    queues: (0..cap).map(|_| Mutex::new(VecDeque::new())).collect(),
                    control: Mutex::new(Control {
                        spawned: 0,
                        cap,
                        eagain_fallback: false,
                        shutdown: false,
                    }),
                    wake: Condvar::new(),
                    cursor: AtomicUsize::new(0),
                }),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-wide pool every scheduler defaults to, sized once by
    /// [`resolve_workers`] (so `MBSP_BENCH_THREADS` at startup also bounds the
    /// resident thread count). Its workers live for the rest of the process.
    pub fn shared() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::with_capacity(resolve_workers(0)))
    }

    /// The worker cap (after any `EAGAIN` fallback shrink).
    pub fn capacity(&self) -> usize {
        self.core.shared.control.lock().unwrap().cap
    }

    /// True if a worker spawn ever failed and the pool fell back to the
    /// workers it had at that point.
    pub fn eagain_fallback(&self) -> bool {
        self.core.shared.control.lock().unwrap().eagain_fallback
    }

    /// Spawns workers lazily up to `min(want, cap)`; on a spawn failure
    /// (`EAGAIN`-class resource exhaustion) freezes the cap at the current
    /// worker count — the pool keeps functioning because submitters help.
    fn ensure_workers(&self, want: usize) {
        let mut control = self.core.shared.control.lock().unwrap();
        let target = want.min(control.cap);
        while control.spawned < target {
            let shared = Arc::clone(&self.core.shared);
            let me = control.spawned;
            match std::thread::Builder::new()
                .name(format!("mbsp-pool-{me}"))
                .spawn(move || worker_loop(shared, me))
            {
                Ok(handle) => {
                    control.spawned += 1;
                    self.core.handles.lock().unwrap().push(handle);
                }
                Err(_) => {
                    control.cap = control.spawned;
                    control.eagain_fallback = true;
                    break;
                }
            }
        }
    }

    /// Runs a batch of scoped closures to completion and returns their results
    /// **in submission order**. Closures may borrow from the caller's stack;
    /// `run_batch` does not return before every closure has finished (this is
    /// the scope guarantee the lifetime erasure rests on). The submitting
    /// thread helps execute queued jobs while it waits, so a batch completes
    /// even if the pool could not spawn a single worker.
    ///
    /// If a closure panics, the remaining jobs still run and the first panic
    /// payload is re-thrown here, like `std::thread::scope`.
    pub fn run_batch<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A one-task batch is the serial case: run inline, no queue round
            // trip, panics propagate natively.
            let task = tasks.into_iter().next().unwrap();
            return vec![task()];
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let state = Arc::new(BatchState {
            progress: Mutex::new(BatchProgress {
                pending: n,
                panic: None,
            }),
            done: Condvar::new(),
        });
        // Erase every job before injecting any: if this loop could panic (an
        // allocation failure) after injection had started, queued jobs might
        // run while the unwinding caller frees the state they borrow.
        let results_base = results.as_mut_ptr();
        let mut jobs: Vec<Job> = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let slot = SlotPtr(unsafe { results_base.add(i) });
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                let mut progress = state.progress.lock().unwrap();
                match outcome {
                    // SAFETY: slot `i` is written by exactly this job, and the
                    // submitter reads the slots only after `pending` hits 0.
                    Ok(value) => unsafe { slot.write(value) },
                    Err(payload) => {
                        progress.panic.get_or_insert(payload);
                    }
                }
                progress.pending -= 1;
                if progress.pending == 0 {
                    state.done.notify_all();
                }
            });
            // SAFETY: lifetime erasure of the scope borrow. `run_batch` blocks
            // until `pending == 0`, i.e. until every job has run to completion,
            // so the `'env` borrows inside the job are live whenever it
            // executes. Jobs are never dropped unexecuted: the queues only
            // drain by running, and shutdown joins after every batch returned.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                    job,
                )
            };
            jobs.push(job);
        }
        self.inject(jobs);
        self.help_until_done(&state);
        let panic = state.progress.lock().unwrap().panic.take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every batch job fills its slot"))
            .collect()
    }

    /// Maps `f` over `0..count` with dynamic index stealing across at most
    /// `lanes` concurrent lanes and returns the results **in index order** —
    /// the pool-backed form of the bench harness's deterministic sweeps.
    pub fn run_indexed<T, F>(&self, count: usize, lanes: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let lanes = lanes.clamp(1, count);
        if lanes == 1 {
            return (0..count).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let next = &next;
        let f = &f;
        let chunks = self.run_batch(
            (0..lanes)
                .map(|_| {
                    move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    }
                })
                .collect(),
        );
        let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        for chunk in chunks {
            for (i, value) in chunk {
                slots[i] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is produced exactly once"))
            .collect()
    }

    /// Queues a batch's jobs round-robin across the injector deques and makes
    /// sure enough workers are awake (spawning lazily on first use).
    fn inject(&self, jobs: Vec<Job>) {
        let shared = &self.core.shared;
        let want = jobs.len();
        for job in jobs {
            let q = shared.cursor.fetch_add(1, Ordering::Relaxed) % shared.queues.len();
            shared.queues[q].lock().unwrap().push_back(job);
        }
        self.ensure_workers(want);
        shared.wake.notify_all();
    }

    /// Blocks until `state`'s batch has fully completed, executing queued jobs
    /// (of any batch — nested batches make this the deadlock-freedom guarantee)
    /// while any are available.
    fn help_until_done(&self, state: &BatchState) {
        let shared = &self.core.shared;
        loop {
            if state.progress.lock().unwrap().pending == 0 {
                return;
            }
            if let Some(job) = shared.steal_any() {
                job();
                continue;
            }
            // Every remaining job of the batch is running on some thread; its
            // completion notifies `done`. The timeout is a backstop that also
            // re-polls the deques (another batch may have queued helpable work).
            let progress = state.progress.lock().unwrap();
            if progress.pending == 0 {
                return;
            }
            let _ = state
                .done
                .wait_timeout(progress, Duration::from_millis(10))
                .unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let pool = WorkerPool::with_capacity(4);
        for rounds in 0..3 {
            let tasks: Vec<_> = (0..17).map(|i| move || i * i + rounds).collect();
            let got = pool.run_batch(tasks);
            let want: Vec<usize> = (0..17).map(|i| i * i + rounds).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn batches_may_borrow_the_callers_stack() {
        let pool = WorkerPool::with_capacity(2);
        let data: Vec<u64> = (0..1000).collect();
        let tasks: Vec<_> = data
            .chunks(100)
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let sums = pool.run_batch(tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_and_single_batches_run_inline() {
        let pool = WorkerPool::with_capacity(3);
        let none: Vec<usize> = pool.run_batch(Vec::<fn() -> usize>::new());
        assert!(none.is_empty());
        assert_eq!(pool.run_batch(vec![|| 41 + 1]), vec![42]);
        // No worker is needed (or spawned) for inline batches.
        assert!(!pool.eagain_fallback());
    }

    #[test]
    fn results_are_identical_for_any_pool_size() {
        let work = |i: usize| -> u64 {
            let mut h = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
            for _ in 0..50 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            h
        };
        let mut outcomes = Vec::new();
        for cap in [1usize, 2, 4, 8] {
            let pool = WorkerPool::with_capacity(cap);
            let tasks: Vec<_> = (0..64).map(|i| move || work(i)).collect();
            outcomes.push(pool.run_batch(tasks));
        }
        for o in &outcomes[1..] {
            assert_eq!(&outcomes[0], o);
        }
    }

    #[test]
    fn run_indexed_covers_every_index_in_order() {
        let pool = WorkerPool::with_capacity(4);
        for lanes in [1usize, 2, 3, 8] {
            let got = pool.run_indexed(13, lanes, |i| i * 3);
            let want: Vec<usize> = (0..13).map(|i| i * 3).collect();
            assert_eq!(got, want, "lanes = {lanes}");
        }
        assert!(pool.run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = WorkerPool::with_capacity(2);
        let outer: Vec<_> = (0..4)
            .map(|o| {
                let pool = pool.clone();
                move || {
                    let inner: Vec<_> = (0..4).map(|i| move || o * 10 + i).collect();
                    pool.run_batch(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = pool.run_batch(outer);
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn a_panicking_job_propagates_after_the_batch_drains() {
        let pool = WorkerPool::with_capacity(2);
        let ran = AtomicUsize::new(0);
        let ran_ref = &ran;
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("job {i} failed");
                    }
                    ran_ref.fetch_add(1, Ordering::Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.run_batch(tasks)));
        assert!(outcome.is_err());
        // Every non-panicking job still ran (the batch drains before rethrow).
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        // The pool survives and accepts the next batch.
        assert_eq!(pool.run_batch(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn workers_spawn_lazily_and_stay_within_the_cap() {
        let pool = WorkerPool::with_capacity(3);
        assert_eq!(pool.capacity(), 3);
        {
            let control = pool.core.shared.control.lock().unwrap();
            assert_eq!(control.spawned, 0, "no batch yet, no thread yet");
        }
        let tasks: Vec<_> = (0..10).map(|i| move || i).collect();
        pool.run_batch(tasks);
        let control = pool.core.shared.control.lock().unwrap();
        assert!(control.spawned <= 3);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = WorkerPool::shared();
        let b = WorkerPool::shared();
        assert!(Arc::ptr_eq(&a.core, &b.core));
        assert!(a.capacity() >= 1);
    }

    #[test]
    fn resolve_workers_is_at_least_one() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }
}
