//! # mbsp-pool — the resident work-stealing worker pool
//!
//! Every parallel site of the workspace — the holistic engine's candidate
//! batches, the sharded search, the dirty-cone repairer, divide-and-conquer and
//! the bench sweeps — used to spawn fresh `std::thread::scope` threads per
//! batch, paying thread startup and teardown on every candidate round. This
//! crate replaces those sites with one **resident** pool in the Blumofe–Leiserson
//! work-stealing mould (the model `mbsp_sched::CilkScheduler` simulates):
//!
//! * **Capped, lazily spawned workers.** No thread exists until the first batch
//!   is submitted; workers are spawned up to the cap as demand appears. If the
//!   OS refuses a thread (`EAGAIN`), the cap falls back to the number of
//!   workers already running instead of panicking — batches still complete
//!   because submitting threads help execute queued jobs while they wait.
//! * **Per-worker injector deques with chase-lev-style stealing.** Each worker
//!   slot owns a deque; batches are injected round-robin. The owner pops
//!   newest-first from the back, thieves (other workers and waiting
//!   submitters) steal oldest-first from the front. Batch tasks are coarse
//!   (one engine chunk, one shard, one instance), so a mutex per deque stands
//!   in for the lock-free chase-lev array without measurable contention.
//! * **Scoped batches.** [`WorkerPool::run_batch`] submits a `Vec` of closures
//!   that may borrow from the caller's stack (like `std::thread::scope`) and
//!   blocks until every closure has run, returning the results **in submission
//!   order**. Worker count and steal interleaving therefore never change what a
//!   caller observes — the holistic engine's deterministic `(cost, index)`
//!   winner tie-break survives unchanged, as does every index-ordered sweep.
//! * **Panic isolation.** A panicking job does not poison the pool: every job
//!   runs under `catch_unwind`, the batch drains fully, and the first payload
//!   is either re-thrown on the submitting thread ([`WorkerPool::run_batch`],
//!   mirroring `std::thread::scope`) or surfaced as a typed [`PoolError`]
//!   carrying the payload message ([`WorkerPool::try_run_batch`]) so callers
//!   can degrade — the schedulers re-run a poisoned batch on the calling
//!   thread instead of aborting. Workers that die anyway (stack overflow and
//!   friends) are reaped and respawned on the next batch, and a worker that
//!   observes shutdown drains the deques before exiting so no queued job is
//!   ever stranded.
//!
//! The pool is also where the workspace's **cancellation vocabulary** lives:
//! [`CancelToken`] (a cloneable atomic flag), [`Deadline`] (optional wall-clock
//! instant + optional token) and [`StopReason`]. The schedulers observe these
//! only at deterministic round boundaries — see the fault-tolerance section of
//! the repository README.
//!
//! The pool also owns the workspace's worker-count contract:
//! [`resolve_workers`] is the single implementation of the `MBSP_BENCH_THREADS`
//! environment-variable parse (an explicit positive count wins, then the
//! environment variable, then the machine's available parallelism — always at
//! least 1) that the five parallel sites previously each re-implemented.
//!
//! [`WorkerPool::shared`] hands out the process-wide pool that the schedulers
//! thread through `EvaluationEngine` batches, `ShardedHolisticScheduler`,
//! `IncrementalScheduler` and `DivideAndConquerScheduler`; isolated pools can
//! still be built with [`WorkerPool::with_capacity`] (tests use this to
//! exercise specific sizes).
//!
//! For long-lived serving (the `mbsp_serve` daemon), [`AdmissionQueue`]
//! provides the batch-admission layer in front of the pool: concurrent client
//! requests for one engine session are stamped with monotone tickets and
//! drained by a single consumer in ticket order, so the session's jobs hit the
//! shared pool back-to-back in a deterministic sequence.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A cloneable cancellation flag: one `cancel()` is observed by every clone.
///
/// The schedulers check the token **only at deterministic round boundaries**
/// (shard-search round, iteration boundary, branch-and-bound node pop), never
/// mid-evaluation — so a cancelled run still returns a valid, never-worse
/// incumbent, and a token that was cancelled *before* the run starts yields a
/// byte-identical result for any worker count.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a search run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The run exhausted its configured budget normally.
    #[default]
    Completed,
    /// The wall-clock deadline passed at a round boundary.
    DeadlineExpired,
    /// A [`CancelToken`] was cancelled.
    Cancelled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Completed => write!(f, "completed"),
            StopReason::DeadlineExpired => write!(f, "deadline expired"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A combined stop condition: an optional wall-clock instant plus an optional
/// [`CancelToken`], checked together at the schedulers' round boundaries.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    instant: Option<Instant>,
    token: Option<CancelToken>,
}

impl Deadline {
    /// Never expires on its own (no instant, no token).
    pub fn none() -> Self {
        Deadline::default()
    }

    /// Expires once `instant` has passed.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            instant: Some(instant),
            token: None,
        }
    }

    /// Expires `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline::at(Instant::now() + d)
    }

    /// Attaches a cancellation token (cloned; `cancel()` on the original is
    /// observed here).
    pub fn with_token(mut self, token: &CancelToken) -> Self {
        self.token = Some(token.clone());
        self
    }

    /// Attaches a token if one is given.
    pub fn with_token_opt(self, token: Option<&CancelToken>) -> Self {
        match token {
            Some(t) => self.with_token(t),
            None => self,
        }
    }

    /// The wall-clock component, if any.
    pub fn instant(&self) -> Option<Instant> {
        self.instant
    }

    /// The wall-clock component, or an effectively-unreachable instant — the
    /// form the evaluation engine's time-budgeted inner loops consume.
    pub fn wall_clock(&self) -> Instant {
        self.instant
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400 * 365))
    }

    /// True once the attached token was cancelled.
    pub fn cancelled(&self) -> bool {
        self.token.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// True once the run should stop: token cancelled or instant passed.
    pub fn expired(&self) -> bool {
        self.cancelled() || self.instant.is_some_and(|t| Instant::now() >= t)
    }

    /// The stop reason if this deadline is expired (cancellation takes
    /// precedence over the clock), `None` while the run may continue.
    pub fn reason(&self) -> Option<StopReason> {
        if self.cancelled() {
            Some(StopReason::Cancelled)
        } else if self.instant.is_some_and(|t| Instant::now() >= t) {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }
}

/// A batch failed because one of its jobs panicked.
///
/// The batch still drained — every other job ran to completion and the pool's
/// workers survive — so the caller can degrade (e.g. re-run the work inline)
/// instead of aborting. Carries the panic payload's message and the index of
/// the first job that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the first panicking job.
    pub job_index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl PoolError {
    fn from_payload(job_index: usize, payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        PoolError { job_index, message }
    }
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch job {} panicked: {}", self.job_index, self.message)
    }
}

impl std::error::Error for PoolError {}

/// Resolves the number of evaluation workers: an explicit positive `configured`
/// wins; otherwise the `MBSP_BENCH_THREADS` environment variable; otherwise the
/// machine's available parallelism. Always at least 1.
///
/// This is the one worker-count contract of the workspace — every parallel
/// site (engine batches, sharded search, dirty-cone repair, divide-and-conquer,
/// bench sweeps) resolves its worker count through this function, so
/// `MBSP_BENCH_THREADS=1` forces serial runs everywhere at once.
pub fn resolve_workers(configured: usize) -> usize {
    if configured >= 1 {
        return configured;
    }
    let env = std::env::var("MBSP_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1);
    env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A queued, lifetime-erased job. Soundness of the erasure rests on
/// [`WorkerPool::run_batch`] never returning before every job of its batch has
/// finished, so the borrows the closure carries outlive its execution.
type Job = Box<dyn FnOnce() + Send>;

/// State shared between the pool handle, its workers and waiting submitters.
struct Shared {
    /// Per-worker-slot injector deques (owner pops back, thieves pop front).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Spawn bookkeeping and the park/wake channel of idle workers.
    control: Mutex<Control>,
    /// Wakes parked workers on injection and on shutdown.
    wake: Condvar,
    /// Round-robin injection cursor.
    cursor: AtomicUsize,
}

struct Control {
    /// Workers spawned so far (they stay resident until shutdown).
    spawned: usize,
    /// Maximum workers this pool may spawn; shrinks on `EAGAIN`.
    cap: usize,
    /// True once a worker spawn failed and the cap was frozen at `spawned`.
    eagain_fallback: bool,
    shutdown: bool,
}

impl Shared {
    /// Pops a job for worker `me`: own deque newest-first, then steal
    /// oldest-first from the other deques.
    fn pop_for(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.queues[me].lock().unwrap().pop_back() {
            return Some(job);
        }
        let n = self.queues.len();
        for d in 1..n {
            if let Some(job) = self.queues[(me + d) % n].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Steals the oldest job of any deque (used by threads that are not pool
    /// workers: submitters helping while they wait for their batch).
    fn steal_any(&self) -> Option<Job> {
        for queue in &self.queues {
            if let Some(job) = queue.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_jobs(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }
}

/// Runs one queued job with panic isolation. Batch jobs already wrap the
/// caller's closure in `catch_unwind` and report panics through their batch
/// state; this outer guard is defence in depth so that a panic escaping the
/// glue (e.g. out of a payload's `Drop`) cannot unwind a resident worker and
/// strand its deque.
fn run_isolated(job: Job) {
    let _ = catch_unwind(AssertUnwindSafe(job));
}

/// Resident worker loop: run jobs while any are queued, park otherwise. On
/// shutdown the worker drains every job it can still reach before exiting, so
/// a submitter blocked on a batch is never stranded by a racing drop.
fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.pop_for(me) {
            run_isolated(job);
            continue;
        }
        let mut control = shared.control.lock().unwrap();
        if control.shutdown {
            break;
        }
        // Re-check under the control lock: an injection between the failed pop
        // and the lock acquisition must not be slept through (injectors notify
        // only after their push is visible).
        if shared.has_jobs() {
            continue;
        }
        control = shared.wake.wait(control).unwrap();
        if control.shutdown {
            break;
        }
    }
    while let Some(job) = shared.pop_for(me) {
        run_isolated(job);
    }
}

/// Progress of one in-flight batch, shared by its jobs and the submitter.
struct BatchState {
    progress: Mutex<BatchProgress>,
    done: Condvar,
}

struct BatchProgress {
    pending: usize,
    /// Submission index and payload of the batch's first panic (later ones are
    /// dropped, like `std::thread::scope` joining multiple panicked threads).
    panic: Option<(usize, Box<dyn std::any::Any + Send>)>,
}

/// Owns the worker handles; dropping the last pool handle shuts the workers
/// down and joins them.
struct PoolCore {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut control = self.shared.control.lock().unwrap();
            control.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// A cloneable handle to a resident work-stealing pool. All clones share the
/// same workers; the workers shut down when the last handle is dropped (the
/// [`WorkerPool::shared`] pool lives for the whole process).
#[derive(Clone)]
pub struct WorkerPool {
    core: Arc<PoolCore>,
}

impl Default for WorkerPool {
    /// The default handle is a clone of the process-wide [`WorkerPool::shared`]
    /// pool, so `SomeScheduler::default()` joins the resident workers instead of
    /// creating a private pool.
    fn default() -> Self {
        WorkerPool::shared().clone()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let control = self.core.shared.control.lock().unwrap();
        f.debug_struct("WorkerPool")
            .field("cap", &control.cap)
            .field("spawned", &control.spawned)
            .field("eagain_fallback", &control.eagain_fallback)
            .finish()
    }
}

/// Raw pointer wrapper so a job can carry its result slot across the thread
/// boundary; each job writes a distinct slot, and the batch join orders the
/// writes before any read.
struct SlotPtr<T>(*mut Option<T>);
unsafe impl<T: Send> Send for SlotPtr<T> {}

impl<T> SlotPtr<T> {
    /// # Safety
    /// The slot must be live, written by exactly one job, and read only after
    /// the batch join ordered the write.
    unsafe fn write(&self, value: T) {
        *self.0 = Some(value);
    }
}

impl WorkerPool {
    /// Creates an isolated pool capped at `cap` workers (at least 1). No thread
    /// is spawned until the first batch arrives.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        WorkerPool {
            core: Arc::new(PoolCore {
                shared: Arc::new(Shared {
                    queues: (0..cap).map(|_| Mutex::new(VecDeque::new())).collect(),
                    control: Mutex::new(Control {
                        spawned: 0,
                        cap,
                        eagain_fallback: false,
                        shutdown: false,
                    }),
                    wake: Condvar::new(),
                    cursor: AtomicUsize::new(0),
                }),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-wide pool every scheduler defaults to, sized once by
    /// [`resolve_workers`] (so `MBSP_BENCH_THREADS` at startup also bounds the
    /// resident thread count). Its workers live for the rest of the process.
    pub fn shared() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::with_capacity(resolve_workers(0)))
    }

    /// The worker cap (after any `EAGAIN` fallback shrink).
    pub fn capacity(&self) -> usize {
        self.core.shared.control.lock().unwrap().cap
    }

    /// True if a worker spawn ever failed and the pool fell back to the
    /// workers it had at that point.
    pub fn eagain_fallback(&self) -> bool {
        self.core.shared.control.lock().unwrap().eagain_fallback
    }

    /// Spawns workers lazily up to `min(want, cap)`; on a spawn failure
    /// (`EAGAIN`-class resource exhaustion) freezes the cap at the current
    /// worker count — the pool keeps functioning because submitters help.
    fn ensure_workers(&self, want: usize) {
        let mut control = self.core.shared.control.lock().unwrap();
        // Reap workers that died (defensive `catch_unwind` makes this nearly
        // unreachable, but a stack overflow or a poisoned internal lock can
        // still kill a thread) so the spawn loop below replaces them instead
        // of counting corpses against the cap.
        {
            let mut handles = self.core.handles.lock().unwrap();
            let mut i = 0;
            while i < handles.len() {
                if handles[i].is_finished() {
                    let _ = handles.swap_remove(i).join();
                    control.spawned -= 1;
                } else {
                    i += 1;
                }
            }
        }
        let target = want.min(control.cap);
        while control.spawned < target {
            let shared = Arc::clone(&self.core.shared);
            let me = control.spawned;
            match std::thread::Builder::new()
                .name(format!("mbsp-pool-{me}"))
                .spawn(move || worker_loop(shared, me))
            {
                Ok(handle) => {
                    control.spawned += 1;
                    self.core.handles.lock().unwrap().push(handle);
                }
                Err(_) => {
                    control.cap = control.spawned;
                    control.eagain_fallback = true;
                    break;
                }
            }
        }
    }

    /// Runs a batch of scoped closures to completion and returns their results
    /// **in submission order**. Closures may borrow from the caller's stack;
    /// `run_batch` does not return before every closure has finished (this is
    /// the scope guarantee the lifetime erasure rests on). The submitting
    /// thread helps execute queued jobs while it waits, so a batch completes
    /// even if the pool could not spawn a single worker.
    ///
    /// If a closure panics, the remaining jobs still run and the first panic
    /// payload is re-thrown here, like `std::thread::scope`.
    pub fn run_batch<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A one-task batch is the serial case: run inline, no queue round
            // trip, panics propagate natively.
            let task = tasks.into_iter().next().unwrap();
            return vec![task()];
        }
        let (results, panic) = self.execute(tasks);
        if let Some((_, payload)) = panic {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every batch job fills its slot"))
            .collect()
    }

    /// Like [`WorkerPool::run_batch`], but a panicking job surfaces as a typed
    /// [`PoolError`] instead of re-throwing the panic.
    ///
    /// The failure mode is identical — the batch drains fully, the workers
    /// survive — only the report differs: the error names the first panicking
    /// job and carries its payload message, so callers can degrade gracefully
    /// (the schedulers re-run a poisoned batch on the calling thread).
    pub fn try_run_batch<'env, T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if n == 1 {
            let task = tasks.into_iter().next().unwrap();
            return match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => Ok(vec![v]),
                Err(payload) => Err(PoolError::from_payload(0, payload.as_ref())),
            };
        }
        let (results, panic) = self.execute(tasks);
        match panic {
            Some((index, payload)) => Err(PoolError::from_payload(index, payload.as_ref())),
            None => Ok(results
                .into_iter()
                .map(|slot| slot.expect("every batch job fills its slot"))
                .collect()),
        }
    }

    /// Shared core of [`WorkerPool::run_batch`]/[`WorkerPool::try_run_batch`]:
    /// runs a multi-job batch to full completion and returns the result slots
    /// plus the first panic, if any. `tasks` must hold at least two jobs.
    #[allow(clippy::type_complexity)]
    fn execute<'env, T, F>(
        &self,
        tasks: Vec<F>,
    ) -> (
        Vec<Option<T>>,
        Option<(usize, Box<dyn std::any::Any + Send>)>,
    )
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        let mut results: Vec<Option<T>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let state = Arc::new(BatchState {
            progress: Mutex::new(BatchProgress {
                pending: n,
                panic: None,
            }),
            done: Condvar::new(),
        });
        // Erase every job before injecting any: if this loop could panic (an
        // allocation failure) after injection had started, queued jobs might
        // run while the unwinding caller frees the state they borrow.
        let results_base = results.as_mut_ptr();
        let mut jobs: Vec<Job> = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let slot = SlotPtr(unsafe { results_base.add(i) });
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                let mut progress = state.progress.lock().unwrap();
                match outcome {
                    // SAFETY: slot `i` is written by exactly this job, and the
                    // submitter reads the slots only after `pending` hits 0.
                    Ok(value) => unsafe { slot.write(value) },
                    Err(payload) => {
                        progress.panic.get_or_insert((i, payload));
                    }
                }
                progress.pending -= 1;
                if progress.pending == 0 {
                    state.done.notify_all();
                }
            });
            // SAFETY: lifetime erasure of the scope borrow. `run_batch` blocks
            // until `pending == 0`, i.e. until every job has run to completion,
            // so the `'env` borrows inside the job are live whenever it
            // executes. Jobs are never dropped unexecuted: the queues only
            // drain by running, and shutdown joins after every batch returned.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                    job,
                )
            };
            jobs.push(job);
        }
        self.inject(jobs);
        self.help_until_done(&state);
        let panic = state.progress.lock().unwrap().panic.take();
        (results, panic)
    }

    /// Maps `f` over `0..count` with dynamic index stealing across at most
    /// `lanes` concurrent lanes and returns the results **in index order** —
    /// the pool-backed form of the bench harness's deterministic sweeps.
    pub fn run_indexed<T, F>(&self, count: usize, lanes: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let lanes = lanes.clamp(1, count);
        if lanes == 1 {
            return (0..count).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let next = &next;
        let f = &f;
        let chunks = self.run_batch(
            (0..lanes)
                .map(|_| {
                    move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    }
                })
                .collect(),
        );
        let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        for chunk in chunks {
            for (i, value) in chunk {
                slots[i] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is produced exactly once"))
            .collect()
    }

    /// Queues a batch's jobs round-robin across the injector deques and makes
    /// sure enough workers are awake (spawning lazily on first use).
    fn inject(&self, jobs: Vec<Job>) {
        let shared = &self.core.shared;
        let want = jobs.len();
        for job in jobs {
            let q = shared.cursor.fetch_add(1, Ordering::Relaxed) % shared.queues.len();
            shared.queues[q].lock().unwrap().push_back(job);
        }
        self.ensure_workers(want);
        shared.wake.notify_all();
    }

    /// Blocks until `state`'s batch has fully completed, executing queued jobs
    /// (of any batch — nested batches make this the deadlock-freedom guarantee)
    /// while any are available.
    fn help_until_done(&self, state: &BatchState) {
        let shared = &self.core.shared;
        loop {
            if state.progress.lock().unwrap().pending == 0 {
                return;
            }
            if let Some(job) = shared.steal_any() {
                job();
                continue;
            }
            // Every remaining job of the batch is running on some thread; its
            // completion notifies `done`. The timeout is a backstop that also
            // re-polls the deques (another batch may have queued helpable work).
            let progress = state.progress.lock().unwrap();
            if progress.pending == 0 {
                return;
            }
            let _ = state
                .done
                .wait_timeout(progress, Duration::from_millis(10))
                .unwrap();
        }
    }
}

/// A FIFO admission queue for concurrent jobs targeting a shared resource.
///
/// The serving daemon (`mbsp_serve`) accepts requests from many client
/// connections at once, but each engine session owns mutable state (the live
/// DAG, the incumbent assignment) that must be touched by **one job at a
/// time, in a deterministic order**. `AdmissionQueue` is that ordering point:
/// producers [`admit`](AdmissionQueue::admit) jobs from any thread and receive
/// a monotone admission ticket; a single consumer drains them with
/// [`next`](AdmissionQueue::next) in exactly ticket order. Batching therefore
/// happens *before* the pool — admitted jobs run back-to-back on the warm
/// [`WorkerPool`] shard workers without interleaving, so two clients issuing
/// the same requests in the same admission order always observe byte-identical
/// results, regardless of connection scheduling.
///
/// [`close`](AdmissionQueue::close) wakes the consumer for shutdown: `next`
/// then drains the backlog and finally returns `None`.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    state: Mutex<AdmissionState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct AdmissionState<T> {
    queue: VecDeque<(u64, T)>,
    next_ticket: u64,
    closed: bool,
}

impl<T> Default for AdmissionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AdmissionQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        AdmissionQueue {
            state: Mutex::new(AdmissionState {
                queue: VecDeque::new(),
                next_ticket: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a job and returns its ticket — the position in the global
    /// admission order. Returns `Err(job)` if the queue has been closed.
    pub fn admit(&self, job: T) -> Result<u64, T> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(job);
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back((ticket, job));
        drop(state);
        self.ready.notify_one();
        Ok(ticket)
    }

    /// Blocks until a job is available and returns it with its ticket.
    /// Jobs come out in strictly increasing ticket order. Returns `None`
    /// once the queue is closed *and* fully drained.
    pub fn next(&self) -> Option<(u64, T)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(entry) = state.queue.pop_front() {
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Number of jobs waiting for admission right now.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Whether no jobs are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: later `admit` calls fail, and `next` returns `None`
    /// after the backlog drains. Idempotent.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let pool = WorkerPool::with_capacity(4);
        for rounds in 0..3 {
            let tasks: Vec<_> = (0..17).map(|i| move || i * i + rounds).collect();
            let got = pool.run_batch(tasks);
            let want: Vec<usize> = (0..17).map(|i| i * i + rounds).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn batches_may_borrow_the_callers_stack() {
        let pool = WorkerPool::with_capacity(2);
        let data: Vec<u64> = (0..1000).collect();
        let tasks: Vec<_> = data
            .chunks(100)
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let sums = pool.run_batch(tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_and_single_batches_run_inline() {
        let pool = WorkerPool::with_capacity(3);
        let none: Vec<usize> = pool.run_batch(Vec::<fn() -> usize>::new());
        assert!(none.is_empty());
        assert_eq!(pool.run_batch(vec![|| 41 + 1]), vec![42]);
        // No worker is needed (or spawned) for inline batches.
        assert!(!pool.eagain_fallback());
    }

    #[test]
    fn results_are_identical_for_any_pool_size() {
        let work = |i: usize| -> u64 {
            let mut h = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
            for _ in 0..50 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            h
        };
        let mut outcomes = Vec::new();
        for cap in [1usize, 2, 4, 8] {
            let pool = WorkerPool::with_capacity(cap);
            let tasks: Vec<_> = (0..64).map(|i| move || work(i)).collect();
            outcomes.push(pool.run_batch(tasks));
        }
        for o in &outcomes[1..] {
            assert_eq!(&outcomes[0], o);
        }
    }

    #[test]
    fn run_indexed_covers_every_index_in_order() {
        let pool = WorkerPool::with_capacity(4);
        for lanes in [1usize, 2, 3, 8] {
            let got = pool.run_indexed(13, lanes, |i| i * 3);
            let want: Vec<usize> = (0..13).map(|i| i * 3).collect();
            assert_eq!(got, want, "lanes = {lanes}");
        }
        assert!(pool.run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = WorkerPool::with_capacity(2);
        let outer: Vec<_> = (0..4)
            .map(|o| {
                let pool = pool.clone();
                move || {
                    let inner: Vec<_> = (0..4).map(|i| move || o * 10 + i).collect();
                    pool.run_batch(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = pool.run_batch(outer);
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn a_panicking_job_propagates_after_the_batch_drains() {
        let pool = WorkerPool::with_capacity(2);
        let ran = AtomicUsize::new(0);
        let ran_ref = &ran;
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("job {i} failed");
                    }
                    ran_ref.fetch_add(1, Ordering::Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.run_batch(tasks)));
        assert!(outcome.is_err());
        // Every non-panicking job still ran (the batch drains before rethrow).
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        // The pool survives and accepts the next batch.
        assert_eq!(pool.run_batch(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn try_run_batch_surfaces_a_typed_error_and_drains() {
        let pool = WorkerPool::with_capacity(2);
        let ran = AtomicUsize::new(0);
        let ran_ref = &ran;
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom at {i}");
                    }
                    ran_ref.fetch_add(1, Ordering::Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = pool.try_run_batch(tasks).expect_err("job 2 panics");
        assert_eq!(err.job_index, 2);
        assert_eq!(err.message, "boom at 2");
        assert_eq!(ran.load(Ordering::Relaxed), 5, "the rest of the batch ran");
        // The pool survives and the Ok path still works.
        assert_eq!(pool.try_run_batch(vec![|| 7, || 8]), Ok(vec![7, 8]));
        // The single-job inline path is isolated too.
        let single: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![Box::new(|| panic!("solo"))];
        let err = pool.try_run_batch(single).expect_err("solo panics");
        assert_eq!((err.job_index, err.message.as_str()), (0, "solo"));
    }

    #[test]
    fn dropping_handles_under_load_joins_cleanly() {
        // Clones of the pool are dropped from other threads while batches are
        // in flight; every batch must still complete with correct results and
        // the final drop must join all workers without hanging.
        let pool = WorkerPool::with_capacity(3);
        let batches: Vec<_> = (0..4)
            .map(|b| {
                let handle = pool.clone();
                std::thread::spawn(move || {
                    let tasks: Vec<_> = (0..32)
                        .map(|i| {
                            move || {
                                std::thread::sleep(Duration::from_micros(200));
                                b * 100 + i
                            }
                        })
                        .collect();
                    handle.run_batch(tasks)
                })
            })
            .collect();
        for _ in 0..8 {
            drop(pool.clone());
        }
        drop(pool); // workers keep running: the batch threads hold clones
        for (b, t) in batches.into_iter().enumerate() {
            let got = t.join().expect("batch thread");
            let want: Vec<usize> = (0..32).map(|i| b * 100 + i).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn cancel_tokens_and_deadlines_expire_as_documented() {
        let token = CancelToken::new();
        let deadline = Deadline::after(Duration::from_secs(3600)).with_token(&token);
        assert!(!deadline.expired());
        assert_eq!(deadline.reason(), None);
        token.cancel();
        assert!(deadline.expired());
        assert_eq!(deadline.reason(), Some(StopReason::Cancelled));

        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.reason(), Some(StopReason::DeadlineExpired));
        // Cancellation outranks the clock when both hold.
        let both = Deadline::at(Instant::now() - Duration::from_millis(1)).with_token(&token);
        assert_eq!(both.reason(), Some(StopReason::Cancelled));
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().wall_clock() > Instant::now());
    }

    #[test]
    fn workers_spawn_lazily_and_stay_within_the_cap() {
        let pool = WorkerPool::with_capacity(3);
        assert_eq!(pool.capacity(), 3);
        {
            let control = pool.core.shared.control.lock().unwrap();
            assert_eq!(control.spawned, 0, "no batch yet, no thread yet");
        }
        let tasks: Vec<_> = (0..10).map(|i| move || i).collect();
        pool.run_batch(tasks);
        let control = pool.core.shared.control.lock().unwrap();
        assert!(control.spawned <= 3);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = WorkerPool::shared();
        let b = WorkerPool::shared();
        assert!(Arc::ptr_eq(&a.core, &b.core));
        assert!(a.capacity() >= 1);
    }

    #[test]
    fn resolve_workers_is_at_least_one() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }
}
