//! Panic-recovery behaviour of the resident pool, exercised against both the
//! process-wide shared pool (whose size follows `MBSP_BENCH_THREADS` — CI runs
//! this binary under `MBSP_BENCH_THREADS=2` and `=8`) and explicit capacities.
//!
//! The contract under test: a panicking job never aborts the process or kills
//! the pool; the batch drains; the failure surfaces either as a re-thrown
//! panic (`run_batch`) or a typed `PoolError` (`try_run_batch`); and the very
//! next batch on the same pool completes normally.

use mbsp_pool::{PoolError, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One poisoned batch followed by a clean batch, on the given pool.
fn poison_then_recover(pool: &WorkerPool, jobs: usize, poisoned: usize) {
    let ran = AtomicUsize::new(0);
    let ran_ref = &ran;
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..jobs)
        .map(|i| {
            Box::new(move || {
                if i == poisoned {
                    panic!("injected panic at job {i}");
                }
                ran_ref.fetch_add(1, Ordering::Relaxed);
                i * 2
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let err: PoolError = pool.try_run_batch(tasks).expect_err("poisoned batch fails");
    assert_eq!(err.job_index, poisoned);
    assert_eq!(err.message, format!("injected panic at job {poisoned}"));
    assert_eq!(
        ran.load(Ordering::Relaxed),
        jobs - 1,
        "every healthy job of the poisoned batch still ran"
    );
    // Recovery: the same pool serves the next batch with correct results.
    let tasks: Vec<_> = (0..jobs).map(|i| move || i + 1).collect();
    let got = pool.run_batch(tasks);
    assert_eq!(got, (1..=jobs).collect::<Vec<_>>());
}

#[test]
fn the_shared_pool_survives_poisoned_batches() {
    let pool = WorkerPool::shared();
    for poisoned in [0, 3, 7] {
        poison_then_recover(pool, 8, poisoned);
    }
}

#[test]
fn explicit_capacities_survive_poisoned_batches() {
    for cap in [1usize, 2, 8] {
        let pool = WorkerPool::with_capacity(cap);
        poison_then_recover(&pool, 12, 5);
    }
}

#[test]
fn run_batch_rethrows_but_the_pool_keeps_working() {
    let pool = WorkerPool::shared();
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
        .map(|i| {
            Box::new(move || {
                if i == 1 {
                    panic!("rethrown");
                }
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let outcome = catch_unwind(AssertUnwindSafe(|| pool.run_batch(tasks)));
    let payload = outcome.expect_err("the panic reaches the submitter");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"rethrown"));
    assert_eq!(pool.run_batch(vec![|| 1, || 2, || 3]), vec![1, 2, 3]);
}

#[test]
fn repeated_poisoning_does_not_leak_or_wedge() {
    let pool = WorkerPool::with_capacity(4);
    for round in 0..25 {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == round % 6 {
                        panic!("round {round}");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert!(pool.try_run_batch(tasks).is_err());
    }
    assert_eq!(pool.run_batch(vec![|| 10, || 20]), vec![10, 20]);
}
