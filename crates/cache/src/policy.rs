//! Cache-eviction policies.
//!
//! The two-stage converter asks a policy which cached values to evict when it needs
//! to free space on a processor. The policy receives the full set of evictable
//! candidates together with recency and future-use information and returns the
//! victims, ordered by eviction preference.

use mbsp_dag::NodeId;

/// Information about one evictable cached value handed to an [`EvictionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateVictim {
    /// The cached node.
    pub node: NodeId,
    /// Its memory weight `μ(v)` (the space freed by evicting it).
    pub weight: f64,
    /// Position (in the processor's compute sequence) of the next use of this value
    /// on this processor, or `None` if it is never used here again.
    pub next_use: Option<usize>,
    /// Position of the most recent use (compute or input) of this value on this
    /// processor; 0 if it was never used (e.g. it was only prefetched).
    pub last_use: usize,
    /// Whether the value is already in slow memory (evicting it then costs no save).
    pub has_blue: bool,
    /// Whether the value is still needed in the future by *any* processor or is a
    /// sink (evicting it without a blue pebble would require saving it first).
    pub needed_later: bool,
}

/// A cache-eviction policy: selects which cached values to drop when space is needed.
pub trait EvictionPolicy {
    /// Human-readable name of the policy (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Compares two candidates by eviction preference: `Less` means `a` should be
    /// evicted before `b`. The order must be **total** (policies break remaining
    /// ties by node id), so any selection strategy — a full sort or a repeated
    /// minimum — produces the same eviction sequence.
    fn order(&self, a: &CandidateVictim, b: &CandidateVictim) -> std::cmp::Ordering;

    /// Does this policy evict every candidate with `next_use == None` before any
    /// candidate with a future use, ordering those spent candidates exactly by
    /// `(has_blue desc, weight desc, node asc)`?
    ///
    /// Returning `true` is a promise about [`EvictionPolicy::order`] that lets
    /// the arena converter serve most evictions from an incrementally maintained
    /// ordered set of spent values (values with no remaining use on the
    /// processor) in `O(log cached)` per victim, instead of rebuilding and
    /// scanning the full candidate set on every eviction trigger. The fallback
    /// full scan still runs whenever the spent set is exhausted, so a policy
    /// answering `true` only changes *how fast* victims are found, never *which*
    /// victims are chosen.
    fn evicts_spent_first(&self) -> bool {
        false
    }

    /// Orders the candidates by eviction preference (most evictable first). The
    /// reference converter walks this order and evicts until enough space is
    /// free; the arena-based converter instead selects victims one at a time via
    /// [`EvictionPolicy::order`], which avoids sorting candidates that are never
    /// evicted.
    fn rank(&self, candidates: &[CandidateVictim]) -> Vec<NodeId> {
        let mut order: Vec<&CandidateVictim> = candidates.iter().collect();
        order.sort_by(|a, b| self.order(a, b));
        order.into_iter().map(|c| c.node).collect()
    }
}

/// Bélády's clairvoyant policy: evict the value whose next use on this processor is
/// furthest in the future; values never needed again are evicted first. Ties are
/// broken towards values that already have a blue pebble (their eviction is free)
/// and then towards heavier values (more space freed per eviction).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClairvoyantPolicy;

impl ClairvoyantPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        ClairvoyantPolicy
    }
}

impl EvictionPolicy for ClairvoyantPolicy {
    fn name(&self) -> &'static str {
        "clairvoyant"
    }

    fn evicts_spent_first(&self) -> bool {
        // `order` keys on `next_use` descending with `None → usize::MAX`, so
        // spent values precede every candidate with a future use, and the
        // remaining tie-break is exactly (has_blue desc, weight desc, node asc).
        true
    }

    fn order(&self, a: &CandidateVictim, b: &CandidateVictim) -> std::cmp::Ordering {
        let key_a = a.next_use.unwrap_or(usize::MAX);
        let key_b = b.next_use.unwrap_or(usize::MAX);
        // Larger next use (further in the future) first.
        key_b
            .cmp(&key_a)
            .then_with(|| b.has_blue.cmp(&a.has_blue))
            .then_with(|| {
                b.weight
                    .partial_cmp(&a.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.node.cmp(&b.node))
    }
}

/// Least-recently-used policy: evict the value whose last use lies furthest in the
/// past. Ties are broken towards values that already have a blue pebble and then
/// towards heavier values.
#[derive(Debug, Clone, Copy, Default)]
pub struct LruPolicy;

impl LruPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        LruPolicy
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn order(&self, a: &CandidateVictim, b: &CandidateVictim) -> std::cmp::Ordering {
        a.last_use
            .cmp(&b.last_use)
            .then_with(|| b.has_blue.cmp(&a.has_blue))
            .then_with(|| {
                b.weight
                    .partial_cmp(&a.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.node.cmp(&b.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(node: usize, next_use: Option<usize>, last_use: usize) -> CandidateVictim {
        CandidateVictim {
            node: NodeId::new(node),
            weight: 1.0,
            next_use,
            last_use,
            has_blue: false,
            needed_later: next_use.is_some(),
        }
    }

    #[test]
    fn clairvoyant_prefers_furthest_next_use() {
        let cands = vec![
            candidate(0, Some(5), 1),
            candidate(1, Some(20), 2),
            candidate(2, None, 3),
            candidate(3, Some(10), 0),
        ];
        let order = ClairvoyantPolicy::new().rank(&cands);
        assert_eq!(order[0], NodeId::new(2)); // never used again
        assert_eq!(order[1], NodeId::new(1)); // used at 20
        assert_eq!(order[2], NodeId::new(3)); // used at 10
        assert_eq!(order[3], NodeId::new(0)); // used at 5
    }

    #[test]
    fn lru_prefers_oldest_last_use() {
        let cands = vec![
            candidate(0, Some(5), 7),
            candidate(1, Some(6), 2),
            candidate(2, Some(7), 9),
        ];
        let order = LruPolicy::new().rank(&cands);
        assert_eq!(order[0], NodeId::new(1));
        assert_eq!(order[1], NodeId::new(0));
        assert_eq!(order[2], NodeId::new(2));
    }

    #[test]
    fn clairvoyant_tie_break_prefers_blue_and_heavy() {
        let mut a = candidate(0, Some(5), 1);
        let mut b = candidate(1, Some(5), 1);
        b.has_blue = true;
        let order = ClairvoyantPolicy::new().rank(&[a, b]);
        assert_eq!(order[0], NodeId::new(1));
        a.weight = 3.0;
        b.has_blue = false;
        let order = ClairvoyantPolicy::new().rank(&[a, b]);
        assert_eq!(order[0], NodeId::new(0));
    }

    #[test]
    fn policies_report_names() {
        assert_eq!(ClairvoyantPolicy::new().name(), "clairvoyant");
        assert_eq!(LruPolicy::new().name(), "lru");
    }

    #[test]
    fn empty_candidate_list_is_fine() {
        assert!(ClairvoyantPolicy::new().rank(&[]).is_empty());
        assert!(LruPolicy::new().rank(&[]).is_empty());
    }
}
