//! # mbsp-cache — cache-management policies and the two-stage baseline
//!
//! The second stage of the paper's two-stage approach takes a memory-oblivious BSP
//! schedule and turns it into a valid MBSP schedule by inserting the save, delete and
//! load operations required by the per-processor memory bound `r`:
//!
//! * [`ClairvoyantPolicy`] — Bélády's optimal offline eviction rule, adapted to
//!   weighted values: when space is needed, evict the cached value whose next use on
//!   this processor lies furthest in the future (values never used again first).
//! * [`LruPolicy`] — the classical least-recently-used rule (the "practical"
//!   baseline, paired with the Cilk scheduler).
//! * [`TwoStageScheduler`] — the BSP→MBSP conversion itself: each BSP compute phase
//!   is split into maximally long segments of compute steps that can run without new
//!   I/O; between segments, values that are still needed (locally or by another
//!   processor) are saved, victims chosen by the eviction policy are deleted, and
//!   the inputs of the next segment are loaded (with greedy prefetching of further
//!   inputs while cache space remains).
//! * [`ConversionArena`] — the same conversion split into a long-lived arena
//!   (topological order, `use_positions`, per-processor buffers — built once per
//!   instance) plus a cheap per-candidate reset. The holistic search of `mbsp-ilp`
//!   converts thousands of neighbouring assignments through one arena without
//!   re-allocating; [`two_stage::reference`] keeps the original single-shot
//!   converter as the differential oracle the arena is tested against (the same
//!   oracle pattern as `lp_solver`'s `dense::` module).

pub mod policy;
pub mod two_stage;

pub use policy::{CandidateVictim, ClairvoyantPolicy, EvictionPolicy, LruPolicy};
pub use two_stage::{
    set_reference_conversion_mode, ConversionArena, TwoStageConfig, TwoStageScheduler,
};
