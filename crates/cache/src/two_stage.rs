//! The two-stage BSP → MBSP conversion (the paper's baseline scheduler).
//!
//! Given a memory-oblivious BSP schedule (which processor computes which node, and
//! in which order) and an eviction policy, [`TwoStageScheduler`] produces a valid
//! MBSP schedule by simulating the per-processor caches:
//!
//! 1. every processor executes a **maximal segment** of its remaining compute
//!    sequence that needs no new I/O (missing inputs or insufficient cache space end
//!    the segment) — this is one MBSP compute phase;
//! 2. values computed in the segment that are needed by another processor, are
//!    sinks, or are about to be evicted while still needed, are **saved**;
//! 3. the eviction policy selects victims to **delete** until the inputs of the next
//!    segment fit;
//! 4. the missing inputs of the next segment are **loaded**, greedily prefetching
//!    the inputs of further compute steps while space remains.
//!
//! Steps 1–4 form one MBSP superstep; the loop repeats until every processor has
//! executed its whole sequence. The conversion never recomputes a node (the BSP
//! stage assigns each node exactly once), exactly like the baseline in the paper.
//!
//! ## The conversion arena
//!
//! The holistic local search of `mbsp-ilp` converts thousands of neighbouring
//! processor assignments per instance, so the conversion state is split in two:
//!
//! * [`ConversionArena`] holds everything that outlives one candidate — the
//!   topological order, the per-processor compute sequences, the `use_positions`
//!   index, the cache-simulation buffers — allocated **once per instance**;
//! * each conversion is then a cheap *reset* of that state. Converting a
//!   neighbouring assignment via [`ConversionArena::convert_assignment`] reuses all
//!   allocations and rebuilds the compute sequences only for the processors the
//!   move actually touched.
//!
//! On generous caches the simulation itself is dominated by victim selection:
//! every eviction trigger used to rebuild and scan a candidate set the size of
//! the cache. The arena instead maintains, per processor, an ordered set of
//! **spent** values (cached, no remaining local use — what the clairvoyant
//! policy evicts first, in exactly the set's order) and a node-id-ordered set
//! of **dead** values (no remaining use anywhere, droppable without a save),
//! updated at the few events that create them; eviction triggers then pop
//! victims in O(log cached). The linear forms are retained behind
//! [`set_reference_conversion_mode`] — operation-identical, so the switch
//! changes timings only.
//!
//! The arena is **operation-identical** to a from-scratch conversion: the
//! [`mod@reference`] module keeps the original single-shot converter as a
//! differential oracle (mirroring the `dense::` oracle of `lp_solver`), and the
//! tests in `mbsp-ilp` replay random move sequences asserting that arena output
//! and oracle output are equal schedules.

use crate::policy::{CandidateVictim, EvictionPolicy};
use mbsp_dag::{DagLike, NodeId, TopologicalOrder};
use mbsp_model::{Architecture, ComputePhaseStep, MbspSchedule, ProcId, Superstep};
use mbsp_sched::BspSchedulingResult;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`ConversionArena`] routes its two optimised hot loops through
/// their retained linear predecessors: the prefetch planner answers its
/// membership test with the original `Vec::contains` scan (quadratic in the
/// prefetch window) instead of the O(1) node mask, and every eviction trigger
/// rebuilds and scans the full candidate set instead of popping victims from
/// the incrementally maintained spent-value set. Both forms are
/// operation-identical — same victims, same saves, same loads — so the switch
/// changes timings only. It exists for one caller: `bench_pool`'s reference
/// runs, which reproduce the pre-optimisation "current path" end to end.
/// Production code never sets it.
static REFERENCE_CONVERSION: AtomicBool = AtomicBool::new(false);

/// Route the arena's conversion hot loops (prefetch membership, eviction
/// victim selection) through their retained linear forms (`true`) or the
/// optimised paths (`false`, the default). Bench/differential use only; both
/// settings produce identical schedules.
pub fn set_reference_conversion_mode(enabled: bool) {
    REFERENCE_CONVERSION.store(enabled, Ordering::Relaxed);
}

/// Is [`set_reference_conversion_mode`] currently routing the conversion hot
/// loops through their linear forms?
#[inline]
pub fn reference_conversion_mode() -> bool {
    REFERENCE_CONVERSION.load(Ordering::Relaxed)
}

/// Configuration of the two-stage converter.
#[derive(Debug, Clone, Copy)]
pub struct TwoStageConfig {
    /// If true, the load phase prefetches the inputs of further compute steps while
    /// cache space remains (fewer supersteps, same I/O volume). If false, only the
    /// inputs of the immediately next compute step are loaded.
    pub prefetch: bool,
}

impl Default for TwoStageConfig {
    fn default() -> Self {
        TwoStageConfig { prefetch: true }
    }
}

/// The two-stage (BSP schedule + cache policy) MBSP scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoStageScheduler {
    config: TwoStageConfig,
}

impl TwoStageScheduler {
    /// Creates a converter with the default configuration.
    pub fn new() -> Self {
        TwoStageScheduler {
            config: TwoStageConfig::default(),
        }
    }

    /// Creates a converter with an explicit configuration.
    pub fn with_config(config: TwoStageConfig) -> Self {
        TwoStageScheduler { config }
    }

    /// Converts a BSP scheduling result into a valid MBSP schedule using `policy`
    /// for cache eviction.
    pub fn schedule<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
        bsp: &BspSchedulingResult,
        policy: &dyn EvictionPolicy,
    ) -> MbspSchedule {
        self.schedule_with_required_outputs(dag, arch, bsp, policy, &[])
    }

    /// Like [`TwoStageScheduler::schedule`], but additionally guarantees that every
    /// node in `required_outputs` is saved to slow memory (used by the
    /// divide-and-conquer scheduler for values needed by later sub-problems).
    pub fn schedule_with_required_outputs<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
        bsp: &BspSchedulingResult,
        policy: &dyn EvictionPolicy,
        required_outputs: &[NodeId],
    ) -> MbspSchedule {
        let mut arena = ConversionArena::new(dag, arch);
        let mut out = MbspSchedule::new(arch.processors);
        arena.convert(
            dag,
            arch,
            bsp,
            policy,
            self.config,
            required_outputs,
            &mut out,
        );
        out
    }
}

/// Long-lived conversion state for one `(dag, arch)` instance.
///
/// All buffers are allocated once and reused across conversions; see the module
/// docs for the split between per-instance and per-candidate state. An arena must
/// only be used with the instance it was built for (node counts are asserted).
#[derive(Debug)]
pub struct ConversionArena {
    n: usize,
    p: usize,
    // ---- Per-instance immutable data. ----
    /// Topological order of the DAG (computed once).
    topo_order: Vec<NodeId>,
    /// Position of every node within `topo_order`.
    topo_pos: Vec<usize>,
    /// Per node: number of compute steps (over the whole run, any processor) that
    /// read it — assignment-independent, copied into `remaining_uses` per run.
    base_uses: Vec<usize>,
    /// Per node: is it a sink of the DAG (always a required output)?
    sink_mask: Vec<bool>,
    /// Per node: is it a source of the DAG (never computed)?
    source_mask: Vec<bool>,
    // ---- Sequence state (rebuilt per candidate, incrementally when possible). ----
    /// Per processor: the full ordered sequence of nodes it computes.
    seq: Vec<Vec<NodeId>>,
    /// Per node: index of the processor whose sequence contains it
    /// (`u32::MAX` for sources, which are never computed).
    node_proc: Vec<u32>,
    /// Per processor and node, flattened as `p * n + v`: sorted positions in
    /// `seq[p]` where the node is used as an input of a compute step.
    use_positions: Vec<Vec<usize>>,
    /// Canonical superstep of every node for the current assignment.
    superstep: Vec<usize>,
    /// Assignment and supersteps of the previous `convert_assignment` call, used to
    /// detect which processors' sequences can be reused verbatim.
    prev_procs: Vec<ProcId>,
    prev_superstep: Vec<usize>,
    /// Whether `prev_procs`/`prev_superstep` describe the current `seq` state.
    have_prev: bool,
    /// Scratch: which processors need their sequence rebuilt.
    seq_dirty: Vec<bool>,
    /// Scratch for the generic (explicit BSP result) path.
    order_pos: Vec<usize>,
    keyed: Vec<(usize, usize, usize, NodeId)>,
    // ---- Per-run cache-simulation state. ----
    /// Per processor: current position in `seq`.
    cursor: Vec<usize>,
    /// Per processor and node (flat `p * n + v`): index of the first entry of
    /// `use_positions` that has not been passed yet.
    use_ptr: Vec<usize>,
    /// Per processor and node (flat `p * n + v`): is the node currently cached?
    /// One flat allocation instead of one heap vector per processor.
    cached: Vec<bool>,
    /// Per processor: the cached nodes as a dense list (arbitrary order), kept
    /// exactly in sync with `cached` so eviction scans cost O(cached) instead of
    /// O(V).
    cached_list: Vec<Vec<NodeId>>,
    /// Per processor and node (flat `p * n + v`): position of the node within
    /// `cached_list` (only meaningful while the node is cached).
    list_pos: Vec<u32>,
    /// Per processor: current cache usage.
    used: Vec<f64>,
    /// Per processor and node (flat `p * n + v`): logical time of the last
    /// access (for LRU).
    last_use: Vec<usize>,
    /// Per node: membership mask mirroring the prefetch planner's
    /// `virtually_cached` list (O(1) lookups instead of a linear scan over a
    /// window that grows with the cache size). Always all-false outside
    /// [`ConversionArena::plan_io`].
    virt_mask: Vec<bool>,
    /// Per node: its memory weight `μ(v)`, copied out of the DAG once so the
    /// spent-set keys can be built without a `DagLike` handle.
    mem_weight: Vec<f64>,
    /// Per processor: the cached values with no remaining use on that processor
    /// ("spent"), ordered exactly as the clairvoyant policy evicts them —
    /// blue-pebbled first, then heavier, then smaller node id (see
    /// [`ConversionArena::spent_key`]). A value enters the set the moment its
    /// last local use is consumed (or when it is computed with no local
    /// children) and leaves it on eviction, so eviction triggers pop victims in
    /// O(log cached) instead of scanning the whole cache. Policies whose
    /// [`EvictionPolicy::evicts_spent_first`] is `false` (LRU) ignore the set
    /// for victim selection, but it is maintained unconditionally so toggling
    /// policies or [`set_reference_conversion_mode`] between runs is safe.
    spent: Vec<std::collections::BTreeSet<(u8, u64, u32)>>,
    /// Per processor and node (flat `p * n + v`): is the node in `spent`?
    in_spent: Vec<bool>,
    /// Per processor: the cached values that are *dead* — no unconsumed use on
    /// any processor and droppable without a save (`!required || blue`) — in
    /// node-id order, exactly the order
    /// [`ConversionArena::make_room_with_dead_values`] drops them in. Deadness
    /// is monotone while a value stays cached, so the set is maintained at the
    /// two events that create it (the last global use is consumed; a required
    /// value with no uses left gains its blue pebble) and on eviction.
    dead: Vec<std::collections::BTreeSet<u32>>,
    /// Per processor and node (flat `p * n + v`): is the node in `dead`?
    in_dead: Vec<bool>,
    /// Per processor: logical clock incremented on every compute step.
    clock: Vec<usize>,
    /// Which nodes currently have a blue pebble.
    blue: Vec<bool>,
    /// Snapshot of `blue` at the beginning of the current superstep.
    blue_snapshot: Vec<bool>,
    /// Number of not-yet-executed compute steps (on any processor) that read a node.
    remaining_uses: Vec<usize>,
    /// Whether the node must eventually reside in slow memory.
    is_required_output: Vec<bool>,
    // ---- Reusable scratch buffers. ----
    scratch_nodes: Vec<NodeId>,
    scratch_nodes2: Vec<NodeId>,
    scratch_nodes3: Vec<NodeId>,
    scratch_parents: Vec<NodeId>,
    scratch_candidates: Vec<CandidateVictim>,
}

impl ConversionArena {
    /// Builds the arena for one instance: computes the topological order and the
    /// assignment-independent use counts, and allocates every buffer a conversion
    /// needs. O(P·V + E) space, built once.
    pub fn new<D: DagLike + ?Sized>(dag: &D, arch: &Architecture) -> Self {
        let n = dag.num_nodes();
        let p = arch.processors;
        let topo = TopologicalOrder::of(dag);
        let topo_pos: Vec<usize> = (0..n).map(|i| topo.position(NodeId::new(i))).collect();
        let mut base_uses = vec![0usize; n];
        for v in dag.nodes().filter(|&v| !dag.is_source(v)) {
            for u in dag.parents(v) {
                base_uses[u.index()] += 1;
            }
        }
        let sink_mask: Vec<bool> = dag.nodes().map(|v| dag.is_sink(v)).collect();
        let source_mask: Vec<bool> = dag.nodes().map(|v| dag.is_source(v)).collect();
        ConversionArena {
            n,
            p,
            topo_order: topo.order().to_vec(),
            topo_pos,
            base_uses,
            sink_mask,
            source_mask,
            seq: vec![Vec::new(); p],
            node_proc: vec![u32::MAX; n],
            use_positions: vec![Vec::new(); p * n],
            superstep: vec![0; n],
            prev_procs: vec![ProcId::new(0); n],
            prev_superstep: vec![0; n],
            have_prev: false,
            seq_dirty: vec![false; p],
            order_pos: vec![usize::MAX; n],
            keyed: Vec::new(),
            cursor: vec![0; p],
            use_ptr: vec![0; p * n],
            cached: vec![false; p * n],
            cached_list: vec![Vec::new(); p],
            list_pos: vec![0; p * n],
            used: vec![0.0; p],
            last_use: vec![0; p * n],
            virt_mask: vec![false; n],
            mem_weight: {
                let w: Vec<f64> = dag.nodes().map(|v| dag.memory_weight(v)).collect();
                // Non-negative weights keep the `to_bits` ordering of `spent_key`
                // consistent with `partial_cmp` in the eviction policies.
                debug_assert!(w.iter().all(|&x| x >= 0.0));
                w
            },
            spent: vec![std::collections::BTreeSet::new(); p],
            in_spent: vec![false; p * n],
            dead: vec![std::collections::BTreeSet::new(); p],
            in_dead: vec![false; p * n],
            clock: vec![0; p],
            blue: vec![false; n],
            blue_snapshot: vec![false; n],
            remaining_uses: vec![0; n],
            is_required_output: vec![false; n],
            scratch_nodes: Vec::new(),
            scratch_nodes2: Vec::new(),
            scratch_nodes3: Vec::new(),
            scratch_parents: Vec::new(),
            scratch_candidates: Vec::new(),
        }
    }

    /// Converts an explicit BSP scheduling result (assignment, supersteps and order
    /// hint) into `out`. This is the general path used for schedules produced by the
    /// BSP baselines; the per-processor sequences are rebuilt from scratch, but all
    /// allocations are reused.
    #[allow(clippy::too_many_arguments)]
    pub fn convert<D: DagLike + ?Sized, P: EvictionPolicy + ?Sized>(
        &mut self,
        dag: &D,
        arch: &Architecture,
        bsp: &BspSchedulingResult,
        policy: &P,
        config: TwoStageConfig,
        required_outputs: &[NodeId],
        out: &mut MbspSchedule,
    ) {
        assert_eq!(dag.num_nodes(), self.n, "arena used with a different DAG");
        // Sequences no longer correspond to a canonical assignment.
        self.have_prev = false;
        self.order_pos.fill(usize::MAX);
        for (i, &v) in bsp.order.iter().enumerate() {
            self.order_pos[v.index()] = i;
        }
        self.keyed.clear();
        for v in dag.nodes().filter(|&v| !dag.is_source(v)) {
            self.keyed.push((
                bsp.schedule.superstep_of(v),
                self.order_pos[v.index()],
                bsp.schedule.proc_of(v).index(),
                v,
            ));
        }
        self.keyed.sort_unstable();
        for pi in 0..self.p {
            self.clear_use_positions(dag, pi);
            self.seq[pi].clear();
        }
        self.node_proc.fill(u32::MAX);
        for i in 0..self.keyed.len() {
            let (_, _, pi, v) = self.keyed[i];
            self.seq[pi].push(v);
            self.node_proc[v.index()] = pi as u32;
        }
        for pi in 0..self.p {
            self.fill_use_positions(dag, pi);
        }
        self.reset_run_state(required_outputs);
        self.run(dag, arch, policy, config, out);
    }

    /// Converts a bare per-node processor assignment into `out`, deriving the
    /// superstep structure canonically (each node in the earliest superstep
    /// compatible with its parents, exactly as `mbsp_ilp::improver::canonical_bsp`).
    ///
    /// This is the hot path of the holistic search: consecutive calls reuse the
    /// per-processor sequences of every processor whose node set and superstep keys
    /// did not change, so a single-node move typically rebuilds one or two
    /// sequences instead of all `P`.
    #[allow(clippy::too_many_arguments)]
    pub fn convert_assignment<D: DagLike + ?Sized, P: EvictionPolicy + ?Sized>(
        &mut self,
        dag: &D,
        arch: &Architecture,
        procs: &[ProcId],
        policy: &P,
        config: TwoStageConfig,
        required_outputs: &[NodeId],
        out: &mut MbspSchedule,
    ) {
        assert_eq!(procs.len(), self.n, "assignment length mismatch");
        self.compute_canonical_supersteps(dag, procs);

        // Which processors need their sequence rebuilt?
        let all_dirty = !self.have_prev;
        self.seq_dirty.fill(false);
        if !all_dirty {
            for i in 0..self.n {
                if self.source_mask[i] {
                    continue;
                }
                if self.prev_procs[i] != procs[i] {
                    self.seq_dirty[self.prev_procs[i].index()] = true;
                    self.seq_dirty[procs[i].index()] = true;
                } else if self.prev_superstep[i] != self.superstep[i] {
                    // The node stays put but its sort key moved: its sequence may
                    // reorder.
                    self.seq_dirty[procs[i].index()] = true;
                }
            }
        }
        for pi in 0..self.p {
            if all_dirty || self.seq_dirty[pi] {
                self.clear_use_positions(dag, pi);
                self.rebuild_seq_for_assignment(pi, procs);
                self.fill_use_positions(dag, pi);
            }
        }
        for i in 0..self.n {
            self.node_proc[i] = if self.source_mask[i] {
                u32::MAX
            } else {
                procs[i].index() as u32
            };
        }
        self.prev_procs.copy_from_slice(procs);
        self.prev_superstep.copy_from_slice(&self.superstep);
        self.have_prev = true;

        self.reset_run_state(required_outputs);
        self.run(dag, arch, policy, config, out);
    }

    /// Canonical superstep of every node for `procs`: in topological order, a
    /// node's superstep is the smallest one compatible with its parents (same
    /// superstep on the same processor, strictly later across processors; sources
    /// force at least superstep 1).
    fn compute_canonical_supersteps<D: DagLike + ?Sized>(&mut self, dag: &D, procs: &[ProcId]) {
        for idx in 0..self.topo_order.len() {
            let v = self.topo_order[idx];
            if self.source_mask[v.index()] {
                self.superstep[v.index()] = 0;
                continue;
            }
            let mut s = 0usize;
            for u in dag.parents(v) {
                let su = self.superstep[u.index()];
                let needed = if self.source_mask[u.index()] {
                    su + 1
                } else if procs[u.index()] == procs[v.index()] {
                    su
                } else {
                    su + 1
                };
                s = s.max(needed);
            }
            self.superstep[v.index()] = s.max(1);
        }
    }

    /// Rebuilds `seq[pi]` for the canonical-assignment path: the non-source nodes
    /// assigned to `pi`, sorted by `(superstep, topological position)` — the same
    /// order the explicit-BSP path derives from the canonical schedule.
    fn rebuild_seq_for_assignment(&mut self, pi: usize, procs: &[ProcId]) {
        let ConversionArena {
            seq,
            superstep,
            topo_pos,
            source_mask,
            ..
        } = self;
        let s = &mut seq[pi];
        s.clear();
        for (i, &proc) in procs.iter().enumerate() {
            if proc.index() == pi && !source_mask[i] {
                s.push(NodeId::new(i));
            }
        }
        s.sort_unstable_by_key(|v| (superstep[v.index()], topo_pos[v.index()]));
    }

    /// Clears the input-use positions referenced by `pi`'s *current* sequence.
    /// Only entries for parents of sequence nodes can be non-empty (the fill
    /// below maintains that invariant), so this costs O(edges of the processor)
    /// rather than O(V).
    fn clear_use_positions<D: DagLike + ?Sized>(&mut self, dag: &D, pi: usize) {
        let base = pi * self.n;
        for idx in 0..self.seq[pi].len() {
            let v = self.seq[pi][idx];
            for u in dag.parents(v) {
                self.use_positions[base + u.index()].clear();
            }
        }
    }

    /// Fills the input-use positions of processor `pi` from its (fresh) sequence;
    /// [`ConversionArena::clear_use_positions`] must have run against the old
    /// sequence first.
    fn fill_use_positions<D: DagLike + ?Sized>(&mut self, dag: &D, pi: usize) {
        let base = pi * self.n;
        for pos in 0..self.seq[pi].len() {
            let v = self.seq[pi][pos];
            for u in dag.parents(v) {
                self.use_positions[base + u.index()].push(pos);
            }
        }
    }

    /// Resets the cache-simulation state for a fresh run (no allocations).
    fn reset_run_state(&mut self, required_outputs: &[NodeId]) {
        self.cursor.fill(0);
        self.used.fill(0.0);
        self.clock.fill(0);
        // Clear exactly the red pebbles the previous run left behind (the dense
        // list knows them), instead of an O(P·V) sweep.
        for pi in 0..self.p {
            let base = pi * self.n;
            for idx in 0..self.cached_list[pi].len() {
                let v = self.cached_list[pi][idx];
                self.cached[base + v.index()] = false;
            }
            self.cached_list[pi].clear();
            // `in_spent` is true exactly for the set members, so clearing the
            // flags while draining keeps both in sync without an O(V) sweep.
            for &(_, _, v) in self.spent[pi].iter() {
                self.in_spent[base + v as usize] = false;
            }
            self.spent[pi].clear();
            for &v in self.dead[pi].iter() {
                self.in_dead[base + v as usize] = false;
            }
            self.dead[pi].clear();
        }
        self.last_use.fill(0);
        self.use_ptr.fill(0);
        // The initial blue set is exactly the sources.
        self.blue.copy_from_slice(&self.source_mask);
        self.remaining_uses.copy_from_slice(&self.base_uses);
        self.is_required_output.copy_from_slice(&self.sink_mask);
        for &v in required_outputs {
            self.is_required_output[v.index()] = true;
        }
    }

    /// The cache simulation itself: identical transition rules to
    /// [`reference::convert`], writing into `out` (whose superstep and phase
    /// allocations are reused).
    fn run<D: DagLike + ?Sized, P: EvictionPolicy + ?Sized>(
        &mut self,
        dag: &D,
        arch: &Architecture,
        policy: &P,
        config: TwoStageConfig,
        out: &mut MbspSchedule,
    ) {
        assert_eq!(
            out.processors(),
            self.p,
            "output schedule has the wrong processor count"
        );
        // Clear any previous contents while keeping the phase-vector allocations.
        for step in out.supersteps_mut().iter_mut() {
            if step.procs.len() != self.p {
                *step = Superstep::empty(self.p);
            }
            for phases in &mut step.procs {
                phases.compute.clear();
                phases.save.clear();
                phases.delete.clear();
                phases.load.clear();
            }
        }

        let total: usize = self.seq.iter().map(|s| s.len()).sum();
        // Each superstep makes progress (a compute or a load); the bound below is a
        // generous safety net against construction bugs.
        let max_supersteps = 4 * total + 4 * self.n + 8;
        let mut step_idx = 0usize;

        while self.cursor.iter().zip(&self.seq).any(|(&c, s)| c < s.len()) {
            assert!(
                step_idx <= max_supersteps,
                "two-stage conversion is not making progress"
            );
            // Snapshot of the blue set at the beginning of the superstep: loads in
            // this superstep may only read values that were already in slow memory
            // (saves of the same superstep are not relied upon, which keeps the
            // construction simple and always valid).
            self.blue_snapshot.copy_from_slice(&self.blue);
            if step_idx >= out.num_supersteps() {
                out.push_empty_superstep();
            }

            for pi in 0..self.p {
                let phases = &mut out.supersteps_mut()[step_idx].procs[pi];
                let base = pi * self.n;

                // ---- 1. Compute phase: maximal segment without new I/O. ----
                loop {
                    let pos = self.cursor[pi];
                    if pos >= self.seq[pi].len() {
                        break;
                    }
                    let v = self.seq[pi][pos];
                    // All parents must already be cached.
                    if dag.parents(v).any(|u| !self.cached[base + u.index()]) {
                        break;
                    }
                    // Make room for the output of v by dropping dead values only
                    // (no I/O allowed inside a compute phase).
                    let needed = dag.memory_weight(v);
                    if !self.make_room_with_dead_values(dag, arch, pi, needed, phases, v) {
                        break;
                    }
                    // Execute the compute step.
                    phases.compute.push(ComputePhaseStep::Compute(v));
                    self.cache_insert(pi, v);
                    self.used[pi] += dag.memory_weight(v);
                    self.clock[pi] += 1;
                    self.last_use[base + v.index()] = self.clock[pi];
                    for u in dag.parents(v) {
                        self.last_use[base + u.index()] = self.clock[pi];
                        self.remaining_uses[u.index()] -= 1;
                    }
                    self.cursor[pi] += 1;
                    // A value becomes spent the moment its last local use is
                    // consumed (for v itself: when it has no local uses at
                    // all); recording the transition here is what lets the
                    // eviction triggers pop victims without scanning the cache.
                    if self.next_use(pi, v).is_none() {
                        self.spent_insert(pi, v);
                    }
                    for u in dag.parents(v) {
                        if self.next_use(pi, u).is_none() {
                            self.spent_insert(pi, u);
                        }
                        if self.remaining_uses[u.index()] == 0
                            && (!self.is_required_output[u.index()] || self.blue[u.index()])
                        {
                            // Last global use consumed: u is now dead on every
                            // processor that still caches a copy.
                            self.dead_insert_everywhere(u);
                        }
                    }
                }

                // ---- 2. Save phase: persist computed values that need it. ----
                for idx in 0..phases.compute.len() {
                    let ComputePhaseStep::Compute(v) = phases.compute[idx] else {
                        continue;
                    };
                    if self.blue[v.index()] {
                        continue;
                    }
                    let has_remote_child = dag.children(v).any(|c| {
                        // A child computed on a different processor will need to
                        // load v from slow memory.
                        !self.source_mask[c.index()] && self.node_proc[c.index()] != pi as u32
                    });
                    if self.is_required_output[v.index()] || has_remote_child {
                        phases.save.push(v);
                        // Blue is part of the spent-set ordering key, so a
                        // spent value must be re-keyed across the flip. Only
                        // pi's set can hold v: an unsaved value exists solely
                        // on the processor that computed it.
                        let respent = self.in_spent[base + v.index()];
                        if respent {
                            self.spent_remove(pi, v);
                        }
                        self.blue[v.index()] = true;
                        if respent {
                            self.spent_insert(pi, v);
                        }
                        if self.remaining_uses[v.index()] == 0 {
                            // A required value with no uses left becomes dead
                            // the moment its blue pebble lands.
                            self.dead_insert_everywhere(v);
                        }
                    }
                }

                // ---- 3 & 4. Eviction and loads for the next segment. ----
                self.plan_io(dag, arch, policy, config, pi, phases);
            }
            step_idx += 1;
        }
        out.supersteps_mut().truncate(step_idx);
        out.remove_empty_supersteps();
    }

    /// Drops dead cached values (not needed by any future compute and not an
    /// unsaved required output) until `needed` additional space is available.
    /// Returns false if that is impossible without real evictions.
    fn make_room_with_dead_values<D: DagLike + ?Sized>(
        &mut self,
        dag: &D,
        arch: &Architecture,
        pi: usize,
        needed: f64,
        phases: &mut mbsp_model::ProcPhases,
        about_to_compute: NodeId,
    ) -> bool {
        let r = arch.cache_size;
        if self.used[pi] + needed <= r + 1e-9 {
            return true;
        }
        if !reference_conversion_mode() {
            // Fast path: the dead values are already known, in eviction order
            // (node-id ascending), in the incrementally maintained `dead` set —
            // pop until the output fits. Parents of the pending compute still
            // have an unconsumed use, so they can never sit in the set.
            while self.used[pi] + needed > r + 1e-9 {
                let Some(&vid) = self.dead[pi].first() else {
                    break;
                };
                let v = NodeId::new(vid as usize);
                debug_assert!(!dag.parents(about_to_compute).any(|u| u == v));
                phases.compute.push(ComputePhaseStep::Delete(v));
                self.cache_remove(pi, v);
                self.used[pi] -= dag.memory_weight(v);
            }
        } else {
            // Retained "current path" (the form `bench_pool`'s reference runs
            // reproduce): collect the dead cached values by scanning the whole
            // cache and evict them in node-index order (the order the reference
            // converter walks them in) until the output fits.
            let mut parents = std::mem::take(&mut self.scratch_parents);
            parents.clear();
            parents.extend(dag.parents(about_to_compute));
            let mut dead = std::mem::take(&mut self.scratch_nodes);
            dead.clear();
            for idx in 0..self.cached_list[pi].len() {
                let v = self.cached_list[pi][idx];
                if !parents.contains(&v)
                    && self.remaining_uses[v.index()] == 0
                    && (!self.is_required_output[v.index()] || self.blue[v.index()])
                {
                    dead.push(v);
                }
            }
            dead.sort_unstable();
            for &v in &dead {
                if self.used[pi] + needed <= r + 1e-9 {
                    break;
                }
                phases.compute.push(ComputePhaseStep::Delete(v));
                self.cache_remove(pi, v);
                self.used[pi] -= dag.memory_weight(v);
            }
            self.scratch_nodes = dead;
            self.scratch_parents = parents;
        }
        self.used[pi] + needed <= r + 1e-9
    }

    /// Plans the save/delete/load phases that prepare the next compute segment of
    /// processor `pi`.
    fn plan_io<D: DagLike + ?Sized, P: EvictionPolicy + ?Sized>(
        &mut self,
        dag: &D,
        arch: &Architecture,
        policy: &P,
        config: TwoStageConfig,
        pi: usize,
        phases: &mut mbsp_model::ProcPhases,
    ) {
        let pos = self.cursor[pi];
        if pos >= self.seq[pi].len() {
            return;
        }
        let r = arch.cache_size;
        let base = pi * self.n;
        let next = self.seq[pi][pos];
        // Inputs of the next compute step that are missing from the cache and
        // already available in slow memory.
        let missing = dag
            .parents(next)
            .filter(|&u| !self.cached[base + u.index()])
            .count();
        let mut loadable = std::mem::take(&mut self.scratch_nodes);
        loadable.clear();
        loadable.extend(
            dag.parents(next)
                .filter(|&u| !self.cached[base + u.index()] && self.blue_snapshot[u.index()]),
        );
        if loadable.len() < missing {
            // Some input is not yet in slow memory (its producer has not caught up);
            // this processor simply waits for a later superstep.
            self.scratch_nodes = loadable;
            return;
        }
        let missing_weight: f64 = loadable.iter().map(|&u| dag.memory_weight(u)).sum();
        let target_free = missing_weight + dag.memory_weight(next);

        // Evict until the next compute step fits.
        if self.used[pi] + target_free > r + 1e-9 {
            // Fast path: a policy that evicts spent values first pops them
            // straight off the ordered spent set — O(log cached) per victim.
            // Parents of `next` (and `next` itself) are never spent (their use
            // at the current cursor position is still pending), so the keep-set
            // filter of the scan below is vacuous here. Popping reads the
            // current blue pebbles, which equal the trigger-start snapshot the
            // scan path sees: the only blue bit an eviction flips belongs to
            // the victim itself, which leaves the cache with it.
            if policy.evicts_spent_first() && !reference_conversion_mode() {
                while self.used[pi] + target_free > r + 1e-9 {
                    let Some((_, _, vid)) = self.spent[pi].pop_first() else {
                        break;
                    };
                    let v = NodeId::new(vid as usize);
                    self.in_spent[base + v.index()] = false;
                    debug_assert!(v != next && !dag.parents(next).any(|u| u == v));
                    let needed_later = self.remaining_uses[v.index()] > 0
                        || (self.is_required_output[v.index()] && !self.blue[v.index()]);
                    if needed_later && !self.blue[v.index()] {
                        phases.save.push(v);
                        self.blue[v.index()] = true;
                    }
                    phases.delete.push(v);
                    self.cache_remove(pi, v);
                    self.used[pi] -= dag.memory_weight(v);
                }
            }
            // Full scan: the reference converter ranks the whole candidate set
            // through `policy.rank`; since the policy order is total, repeatedly
            // extracting the minimum yields the identical eviction sequence
            // without sorting candidates that are never evicted. This is the
            // only path for policies without the spent-first guarantee, the
            // retained "current path" under `reference_conversion_mode`, and
            // the fallback once the spent set runs dry.
            if self.used[pi] + target_free > r + 1e-9 {
                let mut keep = std::mem::take(&mut self.scratch_parents);
                keep.clear();
                keep.extend(dag.parents(next));
                let mut candidates = std::mem::take(&mut self.scratch_candidates);
                candidates.clear();
                for idx in 0..self.cached_list[pi].len() {
                    let v = self.cached_list[pi][idx];
                    if keep.contains(&v) || v == next {
                        continue;
                    }
                    let candidate = CandidateVictim {
                        node: v,
                        weight: dag.memory_weight(v),
                        next_use: self.next_use(pi, v),
                        last_use: self.last_use[base + v.index()],
                        has_blue: self.blue[v.index()],
                        needed_later: self.remaining_uses[v.index()] > 0
                            || (self.is_required_output[v.index()] && !self.blue[v.index()]),
                    };
                    candidates.push(candidate);
                }
                let mut remaining = candidates.len();
                while self.used[pi] + target_free > r + 1e-9 && remaining > 0 {
                    let mut best = 0usize;
                    for i in 1..remaining {
                        if policy.order(&candidates[i], &candidates[best]).is_lt() {
                            best = i;
                        }
                    }
                    let c = candidates[best];
                    candidates.swap(best, remaining - 1);
                    remaining -= 1;
                    let v = c.node;
                    // The victim may sit in the spent set (always, under
                    // reference mode); drop it before the blue flip below
                    // invalidates its ordering key.
                    self.spent_remove(pi, v);
                    // A victim that is still needed and not yet in slow memory must be
                    // saved before it is deleted (save phase precedes delete phase).
                    if c.needed_later && !self.blue[v.index()] {
                        phases.save.push(v);
                        self.blue[v.index()] = true;
                    }
                    phases.delete.push(v);
                    self.cache_remove(pi, v);
                    self.used[pi] -= dag.memory_weight(v);
                }
                self.scratch_candidates = candidates;
                self.scratch_parents = keep;
            }
        }

        // Required loads for the next compute step.
        let mut planned_load_weight = 0.0;
        for &u in &loadable {
            if self.used[pi] + planned_load_weight + dag.memory_weight(u) > r + 1e-9 {
                // Should not happen when r >= r0; bail out conservatively.
                break;
            }
            phases.load.push(u);
            self.cache_insert(pi, u);
            planned_load_weight += dag.memory_weight(u);
        }
        self.used[pi] += planned_load_weight;
        self.scratch_nodes = loadable;

        // Greedy prefetch: extend the loads with the inputs of further compute steps
        // while everything (inputs plus the outputs produced in between) still fits.
        // Membership in the lookahead window is answered by `virt_mask` in O(1);
        // the retained linear scan (`reference_conversion_mode`) is the pre-mask
        // form the bench's reference runs reproduce — both are operation-identical.
        if config.prefetch {
            let scan = reference_conversion_mode();
            let mut virtually_cached = std::mem::take(&mut self.scratch_nodes2);
            virtually_cached.clear();
            virtually_cached.push(next);
            if !scan {
                self.virt_mask[next.index()] = true;
            }
            let mut extras = std::mem::take(&mut self.scratch_nodes3);
            let mut virtual_used = self.used[pi] + dag.memory_weight(next);
            let mut look = pos + 1;
            while look < self.seq[pi].len() {
                let w = self.seq[pi][look];
                extras.clear();
                extras.extend(dag.parents(w).filter(|&u| {
                    !self.cached[base + u.index()]
                        && if scan {
                            !virtually_cached.contains(&u)
                        } else {
                            !self.virt_mask[u.index()]
                        }
                }));
                if extras.iter().any(|&u| !self.blue_snapshot[u.index()]) {
                    break;
                }
                let extra_weight: f64 = extras.iter().map(|&u| dag.memory_weight(u)).sum();
                if virtual_used + extra_weight + dag.memory_weight(w) > r + 1e-9 {
                    break;
                }
                for &u in &extras {
                    phases.load.push(u);
                    self.cache_insert(pi, u);
                    self.used[pi] += dag.memory_weight(u);
                }
                virtual_used += extra_weight + dag.memory_weight(w);
                virtually_cached.push(w);
                if !scan {
                    self.virt_mask[w.index()] = true;
                }
                look += 1;
            }
            if !scan {
                for &v in &virtually_cached {
                    self.virt_mask[v.index()] = false;
                }
            }
            self.scratch_nodes2 = virtually_cached;
            self.scratch_nodes3 = extras;
        }
    }

    /// Position of the next use of `v` as an input on processor `pi`, if any.
    fn next_use(&mut self, pi: usize, v: NodeId) -> Option<usize> {
        let slot = pi * self.n + v.index();
        let positions = &self.use_positions[slot];
        let ptr = &mut self.use_ptr[slot];
        while *ptr < positions.len() && positions[*ptr] < self.cursor[pi] {
            *ptr += 1;
        }
        positions.get(*ptr).copied()
    }

    /// Marks `v` as cached on `pi` (must not be cached already — the converter
    /// only caches on a miss) and tracks it in the dense cached list.
    #[inline]
    fn cache_insert(&mut self, pi: usize, v: NodeId) {
        let slot = pi * self.n + v.index();
        debug_assert!(!self.cached[slot]);
        self.cached[slot] = true;
        self.list_pos[slot] = self.cached_list[pi].len() as u32;
        self.cached_list[pi].push(v);
    }

    /// Ordering key of a spent value within [`ConversionArena::spent`]:
    /// blue-pebbled values first, then heavier values, then smaller node ids —
    /// exactly the clairvoyant tie-break among candidates whose `next_use` is
    /// `None`. Weights are non-negative, so `f64::to_bits` is order-preserving
    /// and its complement sorts heavier values first.
    #[inline]
    fn spent_key(&self, v: NodeId) -> (u8, u64, u32) {
        (
            !self.blue[v.index()] as u8,
            !self.mem_weight[v.index()].to_bits(),
            v.index() as u32,
        )
    }

    /// Inserts `v` into `pi`'s spent set (no-op if already present).
    #[inline]
    fn spent_insert(&mut self, pi: usize, v: NodeId) {
        let slot = pi * self.n + v.index();
        if !self.in_spent[slot] {
            self.in_spent[slot] = true;
            let key = self.spent_key(v);
            self.spent[pi].insert(key);
        }
    }

    /// Removes `v` from `pi`'s spent set (no-op if absent). Must run before any
    /// change to `v`'s blue pebble, while the stored key still matches.
    #[inline]
    fn spent_remove(&mut self, pi: usize, v: NodeId) {
        let slot = pi * self.n + v.index();
        if self.in_spent[slot] {
            self.in_spent[slot] = false;
            let key = self.spent_key(v);
            let removed = self.spent[pi].remove(&key);
            debug_assert!(removed, "spent-set key out of sync");
        }
    }

    /// Marks `v` as dead on every processor that still caches a copy. Called at
    /// the two moments a value becomes dead: its last global use is consumed,
    /// or a required value with no uses left gains its blue pebble. (An
    /// eviction-save flip needs no call: an unsaved value is cached only on the
    /// processor evicting it.)
    fn dead_insert_everywhere(&mut self, v: NodeId) {
        for pi in 0..self.p {
            let slot = pi * self.n + v.index();
            if self.cached[slot] && !self.in_dead[slot] {
                self.in_dead[slot] = true;
                self.dead[pi].insert(v.index() as u32);
            }
        }
    }

    /// Removes `v` from `pi`'s cache and its dense cached list (O(1) swap-remove).
    #[inline]
    fn cache_remove(&mut self, pi: usize, v: NodeId) {
        // Evicted values leave the spent and dead sets with the cache (dead
        // values dropped by `make_room_with_dead_values` are always spent).
        self.spent_remove(pi, v);
        let slot = pi * self.n + v.index();
        if self.in_dead[slot] {
            self.in_dead[slot] = false;
            let removed = self.dead[pi].remove(&(v.index() as u32));
            debug_assert!(removed, "dead-set entry out of sync");
        }
        debug_assert!(self.cached[slot]);
        self.cached[slot] = false;
        let pos = self.list_pos[slot] as usize;
        let last = self.cached_list[pi]
            .pop()
            .expect("cached list is non-empty");
        if last != v {
            self.cached_list[pi][pos] = last;
            self.list_pos[pi * self.n + last.index()] = pos as u32;
        }
    }
}

/// The original single-shot converter, kept verbatim as the differential oracle
/// for [`ConversionArena`] (the `dense::` pattern of `lp_solver`): every
/// conversion the arena performs must be operation-identical to
/// [`reference::convert`] on the same inputs. It allocates its entire state per
/// call, which is exactly the cost the arena exists to avoid — use it in tests
/// and benchmarks only.
pub mod reference {
    use super::*;

    /// Converts `bsp` with a freshly allocated converter (the pre-arena code path).
    pub fn convert<D: DagLike + ?Sized>(
        dag: &D,
        arch: &Architecture,
        bsp: &BspSchedulingResult,
        policy: &dyn EvictionPolicy,
        config: TwoStageConfig,
        required_outputs: &[NodeId],
    ) -> MbspSchedule {
        Converter::new(dag, arch, bsp, policy, config, required_outputs).run()
    }

    /// Internal cache-simulation state of the reference converter.
    pub(super) struct Converter<'a, D: DagLike + ?Sized> {
        dag: &'a D,
        arch: &'a Architecture,
        policy: &'a dyn EvictionPolicy,
        config: TwoStageConfig,
        /// Per processor: the full ordered sequence of nodes it computes.
        seq: Vec<Vec<NodeId>>,
        /// Per processor: current position in `seq`.
        cursor: Vec<usize>,
        /// Per processor and node: sorted positions in `seq[p]` where the node is
        /// used as an input of a compute step.
        use_positions: Vec<Vec<Vec<usize>>>,
        /// Per processor and node: index of the first entry of `use_positions` that
        /// has not been passed yet.
        use_ptr: Vec<Vec<usize>>,
        /// Per processor: which nodes are currently cached.
        cached: Vec<Vec<bool>>,
        /// Per processor: current cache usage.
        used: Vec<f64>,
        /// Per processor and node: logical time of the last access (for LRU).
        last_use: Vec<Vec<usize>>,
        /// Per processor: logical clock incremented on every compute step.
        clock: Vec<usize>,
        /// Which nodes currently have a blue pebble.
        blue: Vec<bool>,
        /// Number of not-yet-executed compute steps (on any processor) that read a
        /// node.
        remaining_uses: Vec<usize>,
        /// Whether the node must eventually reside in slow memory.
        is_required_output: Vec<bool>,
    }

    impl<'a, D: DagLike + ?Sized> Converter<'a, D> {
        pub(super) fn new(
            dag: &'a D,
            arch: &'a Architecture,
            bsp: &'a BspSchedulingResult,
            policy: &'a dyn EvictionPolicy,
            config: TwoStageConfig,
            required_outputs: &[NodeId],
        ) -> Self {
            let n = dag.num_nodes();
            let p = arch.processors;
            // Global order position of every node (from the scheduler's order hint).
            let mut order_pos = vec![usize::MAX; n];
            for (i, &v) in bsp.order.iter().enumerate() {
                order_pos[v.index()] = i;
            }
            // Build the per-processor compute sequences: nodes grouped by BSP
            // superstep, ordered by the order hint; source nodes are not computed.
            let mut seq: Vec<Vec<NodeId>> = vec![Vec::new(); p];
            let mut keyed: Vec<(usize, usize, ProcId, NodeId)> = dag
                .nodes()
                .filter(|&v| !dag.is_source(v))
                .map(|v| {
                    let proc = bsp.schedule.proc_of(v);
                    let step = bsp.schedule.superstep_of(v);
                    (step, order_pos[v.index()], proc, v)
                })
                .collect();
            keyed.sort_unstable();
            for (_, _, proc, v) in keyed {
                seq[proc.index()].push(v);
            }
            // Input-use positions per processor.
            let mut use_positions = vec![vec![Vec::new(); n]; p];
            for (pi, s) in seq.iter().enumerate() {
                for (pos, &v) in s.iter().enumerate() {
                    for u in dag.parents(v) {
                        use_positions[pi][u.index()].push(pos);
                    }
                }
            }
            // Remaining global use counts.
            let mut remaining_uses = vec![0usize; n];
            for s in &seq {
                for &v in s {
                    for u in dag.parents(v) {
                        remaining_uses[u.index()] += 1;
                    }
                }
            }
            let mut blue = vec![false; n];
            for v in dag.source_nodes() {
                blue[v.index()] = true;
            }
            let mut is_required_output: Vec<bool> = dag.nodes().map(|v| dag.is_sink(v)).collect();
            for &v in required_outputs {
                is_required_output[v.index()] = true;
            }
            Converter {
                dag,
                arch,
                policy,
                config,
                seq,
                cursor: vec![0; p],
                use_positions,
                use_ptr: vec![vec![0; n]; p],
                cached: vec![vec![false; n]; p],
                used: vec![0.0; p],
                last_use: vec![vec![0; n]; p],
                clock: vec![0; p],
                blue,
                remaining_uses,
                is_required_output,
            }
        }

        pub(super) fn run(mut self) -> MbspSchedule {
            let p = self.arch.processors;
            let mut schedule = MbspSchedule::new(p);
            let total: usize = self.seq.iter().map(|s| s.len()).sum();
            // Each superstep makes progress (a compute or a load); the bound below
            // is a generous safety net against construction bugs.
            let max_supersteps = 4 * total + 4 * self.dag.num_nodes() + 8;

            while self.cursor.iter().zip(&self.seq).any(|(&c, s)| c < s.len()) {
                assert!(
                    schedule.num_supersteps() <= max_supersteps,
                    "two-stage conversion is not making progress"
                );
                // Snapshot of the blue set at the beginning of the superstep: loads
                // in this superstep may only read values that were already in slow
                // memory.
                let blue_snapshot = self.blue.clone();
                let step = schedule.push_empty_superstep();

                for pi in 0..p {
                    let proc = ProcId::new(pi);
                    let phases = step.proc_mut(proc);

                    // ---- 1. Compute phase: maximal segment without new I/O. ----
                    let mut computed_here: Vec<NodeId> = Vec::new();
                    loop {
                        let pos = self.cursor[pi];
                        if pos >= self.seq[pi].len() {
                            break;
                        }
                        let v = self.seq[pi][pos];
                        // All parents must already be cached.
                        if self.dag.parents(v).any(|u| !self.cached[pi][u.index()]) {
                            break;
                        }
                        // Make room for the output of v by dropping dead values only
                        // (no I/O allowed inside a compute phase).
                        let needed = self.dag.memory_weight(v);
                        if !self.make_room_with_dead_values(pi, needed, phases, v) {
                            break;
                        }
                        // Execute the compute step.
                        phases.compute.push(ComputePhaseStep::Compute(v));
                        self.cached[pi][v.index()] = true;
                        self.used[pi] += self.dag.memory_weight(v);
                        self.clock[pi] += 1;
                        self.last_use[pi][v.index()] = self.clock[pi];
                        for u in self.dag.parents(v) {
                            self.last_use[pi][u.index()] = self.clock[pi];
                            self.remaining_uses[u.index()] -= 1;
                        }
                        self.cursor[pi] += 1;
                        computed_here.push(v);
                    }

                    // ---- 2. Save phase: persist computed values that need it. ----
                    for &v in &computed_here {
                        if self.blue[v.index()] {
                            continue;
                        }
                        let has_remote_child = self.dag.children(v).any(|c| {
                            // A child computed on a different processor will need to
                            // load v from slow memory.
                            !self.dag.is_source(c) && !self.seq[pi].contains(&c)
                        });
                        if self.is_required_output[v.index()] || has_remote_child {
                            phases.save.push(v);
                            self.blue[v.index()] = true;
                        }
                    }

                    // ---- 3 & 4. Eviction and loads for the next segment. ----
                    self.plan_io(pi, phases, &blue_snapshot);
                }
            }
            schedule.remove_empty_supersteps();
            schedule
        }

        /// Drops dead cached values until `needed` additional space is available.
        fn make_room_with_dead_values(
            &mut self,
            pi: usize,
            needed: f64,
            phases: &mut mbsp_model::ProcPhases,
            about_to_compute: NodeId,
        ) -> bool {
            let r = self.arch.cache_size;
            if self.used[pi] + needed <= r + 1e-9 {
                return true;
            }
            let parents: Vec<NodeId> = self.dag.parents(about_to_compute).collect();
            let dead: Vec<NodeId> = (0..self.dag.num_nodes())
                .map(NodeId::new)
                .filter(|&v| {
                    self.cached[pi][v.index()]
                        && !parents.contains(&v)
                        && self.remaining_uses[v.index()] == 0
                        && (!self.is_required_output[v.index()] || self.blue[v.index()])
                })
                .collect();
            for v in dead {
                if self.used[pi] + needed <= r + 1e-9 {
                    break;
                }
                phases.compute.push(ComputePhaseStep::Delete(v));
                self.cached[pi][v.index()] = false;
                self.used[pi] -= self.dag.memory_weight(v);
            }
            self.used[pi] + needed <= r + 1e-9
        }

        /// Plans the save/delete/load phases that prepare the next compute segment
        /// of processor `pi`.
        fn plan_io(
            &mut self,
            pi: usize,
            phases: &mut mbsp_model::ProcPhases,
            blue_snapshot: &[bool],
        ) {
            let pos = self.cursor[pi];
            if pos >= self.seq[pi].len() {
                return;
            }
            let r = self.arch.cache_size;
            let next = self.seq[pi][pos];
            // Inputs of the next compute step that are missing from the cache and
            // already available in slow memory.
            let missing: Vec<NodeId> = self
                .dag
                .parents(next)
                .filter(|&u| !self.cached[pi][u.index()])
                .collect();
            let loadable: Vec<NodeId> = missing
                .iter()
                .copied()
                .filter(|&u| blue_snapshot[u.index()])
                .collect();
            if loadable.len() < missing.len() {
                // Some input is not yet in slow memory; wait for a later superstep.
                return;
            }
            let missing_weight: f64 = loadable.iter().map(|&u| self.dag.memory_weight(u)).sum();
            let target_free = missing_weight + self.dag.memory_weight(next);

            // Evict until the next compute step fits.
            if self.used[pi] + target_free > r + 1e-9 {
                let keep: Vec<NodeId> = self.dag.parents(next).collect();
                let victims: Vec<NodeId> = (0..self.dag.num_nodes())
                    .map(NodeId::new)
                    .filter(|&v| self.cached[pi][v.index()] && !keep.contains(&v) && v != next)
                    .collect();
                let candidates: Vec<CandidateVictim> = victims
                    .into_iter()
                    .map(|v| CandidateVictim {
                        node: v,
                        weight: self.dag.memory_weight(v),
                        next_use: self.next_use(pi, v),
                        last_use: self.last_use[pi][v.index()],
                        has_blue: self.blue[v.index()],
                        needed_later: self.remaining_uses[v.index()] > 0
                            || (self.is_required_output[v.index()] && !self.blue[v.index()]),
                    })
                    .collect();
                let ranked = self.policy.rank(&candidates);
                let needed_map: std::collections::HashMap<NodeId, bool> = candidates
                    .iter()
                    .map(|c| (c.node, c.needed_later))
                    .collect();
                for v in ranked {
                    if self.used[pi] + target_free <= r + 1e-9 {
                        break;
                    }
                    // A victim that is still needed and not yet in slow memory must
                    // be saved before it is deleted.
                    if needed_map[&v] && !self.blue[v.index()] {
                        phases.save.push(v);
                        self.blue[v.index()] = true;
                    }
                    phases.delete.push(v);
                    self.cached[pi][v.index()] = false;
                    self.used[pi] -= self.dag.memory_weight(v);
                }
            }

            // Required loads for the next compute step.
            let mut planned_load_weight = 0.0;
            for &u in &loadable {
                if self.used[pi] + planned_load_weight + self.dag.memory_weight(u) > r + 1e-9 {
                    // Should not happen when r >= r0; bail out conservatively.
                    break;
                }
                phases.load.push(u);
                self.cached[pi][u.index()] = true;
                planned_load_weight += self.dag.memory_weight(u);
            }
            self.used[pi] += planned_load_weight;

            // Greedy prefetch: extend the loads with the inputs of further compute
            // steps while everything still fits.
            if self.config.prefetch {
                let mut virtual_used = self.used[pi] + self.dag.memory_weight(next);
                let mut virtually_cached: Vec<NodeId> = vec![next];
                let mut look = pos + 1;
                while look < self.seq[pi].len() {
                    let w = self.seq[pi][look];
                    let extra_inputs: Vec<NodeId> = self
                        .dag
                        .parents(w)
                        .filter(|&u| !self.cached[pi][u.index()] && !virtually_cached.contains(&u))
                        .collect();
                    if extra_inputs.iter().any(|&u| !blue_snapshot[u.index()]) {
                        break;
                    }
                    let extra_weight: f64 = extra_inputs
                        .iter()
                        .map(|&u| self.dag.memory_weight(u))
                        .sum();
                    if virtual_used + extra_weight + self.dag.memory_weight(w) > r + 1e-9 {
                        break;
                    }
                    for u in extra_inputs {
                        phases.load.push(u);
                        self.cached[pi][u.index()] = true;
                        self.used[pi] += self.dag.memory_weight(u);
                    }
                    virtual_used += extra_weight + self.dag.memory_weight(w);
                    virtually_cached.push(w);
                    look += 1;
                }
            }
        }

        /// Position of the next use of `v` as an input on processor `pi`, if any.
        fn next_use(&mut self, pi: usize, v: NodeId) -> Option<usize> {
            let positions = &self.use_positions[pi][v.index()];
            let ptr = &mut self.use_ptr[pi][v.index()];
            while *ptr < positions.len() && positions[*ptr] < self.cursor[pi] {
                *ptr += 1;
            }
            positions.get(*ptr).copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClairvoyantPolicy, LruPolicy};
    use mbsp_model::{sync_cost, CostModel, MbspInstance};
    use mbsp_sched::{BspScheduler, DfsScheduler, GreedyBspScheduler};

    fn instances() -> Vec<MbspInstance> {
        mbsp_gen::tiny_dataset(42)
            .into_iter()
            .map(|inst| {
                MbspInstance::with_cache_factor(inst.dag, Architecture::paper_default(0.0), 3.0)
            })
            .collect()
    }

    #[test]
    fn two_stage_schedules_are_valid_on_the_tiny_dataset() {
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        let sched = GreedyBspScheduler::new();
        for inst in instances() {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let mbsp = conv.schedule(inst.dag(), inst.arch(), &bsp, &policy);
            mbsp.validate(inst.dag(), inst.arch())
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name()));
            // Every non-source node is computed exactly once (no recomputation).
            let stats = mbsp.statistics(inst.dag(), inst.arch());
            let non_sources = inst
                .dag()
                .nodes()
                .filter(|&v| !inst.dag().is_source(v))
                .count();
            assert_eq!(stats.computes, non_sources, "{}", inst.name());
            assert_eq!(stats.recomputed_nodes, 0);
        }
    }

    #[test]
    fn arena_conversion_matches_the_reference_converter() {
        let policy = ClairvoyantPolicy::new();
        let config = TwoStageConfig::default();
        let sched = GreedyBspScheduler::new();
        for inst in instances() {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let oracle = reference::convert(inst.dag(), inst.arch(), &bsp, &policy, config, &[]);
            let mut arena = ConversionArena::new(inst.dag(), inst.arch());
            let mut out = MbspSchedule::new(inst.arch().processors);
            arena.convert(
                inst.dag(),
                inst.arch(),
                &bsp,
                &policy,
                config,
                &[],
                &mut out,
            );
            assert_eq!(out, oracle, "{}", inst.name());
            // A second conversion through the same arena is identical as well.
            arena.convert(
                inst.dag(),
                inst.arch(),
                &bsp,
                &policy,
                config,
                &[],
                &mut out,
            );
            assert_eq!(out, oracle, "{}: arena reuse drifted", inst.name());
        }
    }

    #[test]
    fn reference_conversion_mode_is_operation_identical() {
        // The retained linear hot loops (full-cache eviction scans, quadratic
        // prefetch-window scan) must produce byte-identical schedules to the
        // spent/dead-set and mask fast paths — `bench_pool`'s reference runs
        // depend on the switch changing timings only. Exercised with and
        // without prefetch, under both policies, through one reused arena.
        let sched = GreedyBspScheduler::new();
        for prefetch in [true, false] {
            let config = TwoStageConfig { prefetch };
            for inst in instances() {
                let bsp = sched.schedule(inst.dag(), inst.arch());
                let mut arena = ConversionArena::new(inst.dag(), inst.arch());
                let mut fast = MbspSchedule::new(inst.arch().processors);
                let mut linear = MbspSchedule::new(inst.arch().processors);
                let clair = ClairvoyantPolicy::new();
                let lru = LruPolicy::new();
                for policy in [&clair as &dyn EvictionPolicy, &lru] {
                    arena.convert(
                        inst.dag(),
                        inst.arch(),
                        &bsp,
                        policy,
                        config,
                        &[],
                        &mut fast,
                    );
                    set_reference_conversion_mode(true);
                    arena.convert(
                        inst.dag(),
                        inst.arch(),
                        &bsp,
                        policy,
                        config,
                        &[],
                        &mut linear,
                    );
                    set_reference_conversion_mode(false);
                    assert_eq!(
                        fast,
                        linear,
                        "{} ({}, prefetch={prefetch}): modes diverged",
                        inst.name(),
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lru_policy_also_produces_valid_schedules() {
        let conv = TwoStageScheduler::new();
        let policy = LruPolicy::new();
        let sched = GreedyBspScheduler::new();
        for inst in instances().into_iter().take(6) {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let mbsp = conv.schedule(inst.dag(), inst.arch(), &bsp, &policy);
            mbsp.validate(inst.dag(), inst.arch())
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name()));
        }
    }

    #[test]
    fn single_processor_dfs_baseline_is_valid() {
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        for inst in mbsp_gen::tiny_dataset(42).into_iter().take(5) {
            let arch = Architecture::single_processor(inst.dag.minimal_cache_size() * 3.0, 1.0);
            let instance = MbspInstance::new(inst.dag, arch);
            let bsp = DfsScheduler::new().schedule(instance.dag(), instance.arch());
            let mbsp = conv.schedule(instance.dag(), instance.arch(), &bsp, &policy);
            mbsp.validate(instance.dag(), instance.arch()).unwrap();
        }
    }

    #[test]
    fn tight_cache_still_produces_valid_schedules() {
        // r = r0 is the minimal feasible cache size: the conversion must still work.
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        let sched = GreedyBspScheduler::new();
        for inst in mbsp_gen::tiny_dataset(7).into_iter().take(6) {
            let instance =
                MbspInstance::with_cache_factor(inst.dag, Architecture::paper_default(0.0), 1.0);
            let bsp = sched.schedule(instance.dag(), instance.arch());
            let mbsp = conv.schedule(instance.dag(), instance.arch(), &bsp, &policy);
            mbsp.validate(instance.dag(), instance.arch())
                .unwrap_or_else(|e| panic!("{}: {e}", instance.name()));
        }
    }

    #[test]
    fn clairvoyant_is_not_worse_than_lru_on_average() {
        // The clairvoyant policy should produce schedules that are at least as good
        // as LRU in aggregate (it has strictly more information).
        let conv = TwoStageScheduler::new();
        let sched = GreedyBspScheduler::new();
        let mut clair_total = 0.0;
        let mut lru_total = 0.0;
        for inst in instances() {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let a = conv.schedule(inst.dag(), inst.arch(), &bsp, &ClairvoyantPolicy::new());
            let b = conv.schedule(inst.dag(), inst.arch(), &bsp, &LruPolicy::new());
            clair_total += sync_cost(&a, inst.dag(), inst.arch()).total;
            lru_total += sync_cost(&b, inst.dag(), inst.arch()).total;
        }
        assert!(
            clair_total <= lru_total * 1.02,
            "clairvoyant ({clair_total}) should not be notably worse than LRU ({lru_total})"
        );
    }

    #[test]
    fn prefetching_reduces_supersteps_without_breaking_validity() {
        let sched = GreedyBspScheduler::new();
        let policy = ClairvoyantPolicy::new();
        for inst in instances().into_iter().take(4) {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let with = TwoStageScheduler::with_config(TwoStageConfig { prefetch: true }).schedule(
                inst.dag(),
                inst.arch(),
                &bsp,
                &policy,
            );
            let without = TwoStageScheduler::with_config(TwoStageConfig { prefetch: false })
                .schedule(inst.dag(), inst.arch(), &bsp, &policy);
            with.validate(inst.dag(), inst.arch()).unwrap();
            without.validate(inst.dag(), inst.arch()).unwrap();
            assert!(with.num_supersteps() <= without.num_supersteps());
        }
    }

    #[test]
    fn arena_matches_reference_without_prefetch_and_with_lru() {
        let sched = GreedyBspScheduler::new();
        for inst in instances().into_iter().take(5) {
            for prefetch in [false, true] {
                let config = TwoStageConfig { prefetch };
                let bsp = sched.schedule(inst.dag(), inst.arch());
                let policy = LruPolicy::new();
                let oracle =
                    reference::convert(inst.dag(), inst.arch(), &bsp, &policy, config, &[]);
                let mut arena = ConversionArena::new(inst.dag(), inst.arch());
                let mut out = MbspSchedule::new(inst.arch().processors);
                arena.convert(
                    inst.dag(),
                    inst.arch(),
                    &bsp,
                    &policy,
                    config,
                    &[],
                    &mut out,
                );
                assert_eq!(out, oracle, "{} prefetch={prefetch}", inst.name());
            }
        }
    }

    #[test]
    fn async_cost_is_computable_on_converted_schedules() {
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        let sched = GreedyBspScheduler::new();
        let inst = &instances()[0];
        let bsp = sched.schedule(inst.dag(), inst.arch());
        let mbsp = conv.schedule(inst.dag(), inst.arch(), &bsp, &policy);
        let sync = CostModel::Synchronous.evaluate(&mbsp, inst.dag(), inst.arch());
        let arch0 = inst.arch().with_latency(0.0);
        let asynchronous = CostModel::Asynchronous.evaluate(&mbsp, inst.dag(), &arch0);
        let sync0 = CostModel::Synchronous.evaluate(&mbsp, inst.dag(), &arch0);
        assert!(sync > 0.0);
        assert!(asynchronous <= sync0 + 1e-9);
    }
}
