//! The two-stage BSP → MBSP conversion (the paper's baseline scheduler).
//!
//! Given a memory-oblivious BSP schedule (which processor computes which node, and
//! in which order) and an eviction policy, [`TwoStageScheduler`] produces a valid
//! MBSP schedule by simulating the per-processor caches:
//!
//! 1. every processor executes a **maximal segment** of its remaining compute
//!    sequence that needs no new I/O (missing inputs or insufficient cache space end
//!    the segment) — this is one MBSP compute phase;
//! 2. values computed in the segment that are needed by another processor, are
//!    sinks, or are about to be evicted while still needed, are **saved**;
//! 3. the eviction policy selects victims to **delete** until the inputs of the next
//!    segment fit;
//! 4. the missing inputs of the next segment are **loaded**, greedily prefetching
//!    the inputs of further compute steps while space remains.
//!
//! Steps 1–4 form one MBSP superstep; the loop repeats until every processor has
//! executed its whole sequence. The conversion never recomputes a node (the BSP
//! stage assigns each node exactly once), exactly like the baseline in the paper.

use crate::policy::{CandidateVictim, EvictionPolicy};
use mbsp_dag::{CompDag, NodeId};
use mbsp_model::{Architecture, ComputePhaseStep, MbspSchedule, ProcId};
use mbsp_sched::BspSchedulingResult;

/// Configuration of the two-stage converter.
#[derive(Debug, Clone, Copy)]
pub struct TwoStageConfig {
    /// If true, the load phase prefetches the inputs of further compute steps while
    /// cache space remains (fewer supersteps, same I/O volume). If false, only the
    /// inputs of the immediately next compute step are loaded.
    pub prefetch: bool,
}

impl Default for TwoStageConfig {
    fn default() -> Self {
        TwoStageConfig { prefetch: true }
    }
}

/// The two-stage (BSP schedule + cache policy) MBSP scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoStageScheduler {
    config: TwoStageConfig,
}

impl TwoStageScheduler {
    /// Creates a converter with the default configuration.
    pub fn new() -> Self {
        TwoStageScheduler { config: TwoStageConfig::default() }
    }

    /// Creates a converter with an explicit configuration.
    pub fn with_config(config: TwoStageConfig) -> Self {
        TwoStageScheduler { config }
    }

    /// Converts a BSP scheduling result into a valid MBSP schedule using `policy`
    /// for cache eviction.
    pub fn schedule(
        &self,
        dag: &CompDag,
        arch: &Architecture,
        bsp: &BspSchedulingResult,
        policy: &dyn EvictionPolicy,
    ) -> MbspSchedule {
        self.schedule_with_required_outputs(dag, arch, bsp, policy, &[])
    }

    /// Like [`TwoStageScheduler::schedule`], but additionally guarantees that every
    /// node in `required_outputs` is saved to slow memory (used by the
    /// divide-and-conquer scheduler for values needed by later sub-problems).
    pub fn schedule_with_required_outputs(
        &self,
        dag: &CompDag,
        arch: &Architecture,
        bsp: &BspSchedulingResult,
        policy: &dyn EvictionPolicy,
        required_outputs: &[NodeId],
    ) -> MbspSchedule {
        Converter::new(dag, arch, bsp, policy, self.config, required_outputs).run()
    }
}

/// Internal cache-simulation state of the converter.
struct Converter<'a> {
    dag: &'a CompDag,
    arch: &'a Architecture,
    policy: &'a dyn EvictionPolicy,
    config: TwoStageConfig,
    /// Per processor: the full ordered sequence of nodes it computes.
    seq: Vec<Vec<NodeId>>,
    /// Per processor: current position in `seq`.
    cursor: Vec<usize>,
    /// Per processor and node: sorted positions in `seq[p]` where the node is used
    /// as an input of a compute step.
    use_positions: Vec<Vec<Vec<usize>>>,
    /// Per processor and node: index of the first entry of `use_positions` that has
    /// not been passed yet.
    use_ptr: Vec<Vec<usize>>,
    /// Per processor: which nodes are currently cached.
    cached: Vec<Vec<bool>>,
    /// Per processor: current cache usage.
    used: Vec<f64>,
    /// Per processor and node: logical time of the last access (for LRU).
    last_use: Vec<Vec<usize>>,
    /// Per processor: logical clock incremented on every compute step.
    clock: Vec<usize>,
    /// Which nodes currently have a blue pebble.
    blue: Vec<bool>,
    /// Number of not-yet-executed compute steps (on any processor) that read a node.
    remaining_uses: Vec<usize>,
    /// Whether the node must eventually reside in slow memory (sink of the DAG).
    is_required_output: Vec<bool>,
}

impl<'a> Converter<'a> {
    fn new(
        dag: &'a CompDag,
        arch: &'a Architecture,
        bsp: &'a BspSchedulingResult,
        policy: &'a dyn EvictionPolicy,
        config: TwoStageConfig,
        required_outputs: &[NodeId],
    ) -> Self {
        let n = dag.num_nodes();
        let p = arch.processors;
        // Global order position of every node (from the scheduler's order hint).
        let mut order_pos = vec![usize::MAX; n];
        for (i, &v) in bsp.order.iter().enumerate() {
            order_pos[v.index()] = i;
        }
        // Build the per-processor compute sequences: nodes grouped by BSP superstep,
        // ordered by the order hint; source nodes are not computed.
        let mut seq: Vec<Vec<NodeId>> = vec![Vec::new(); p];
        let mut keyed: Vec<(usize, usize, ProcId, NodeId)> = dag
            .nodes()
            .filter(|&v| !dag.is_source(v))
            .map(|v| {
                let proc = bsp.schedule.proc_of(v);
                let step = bsp.schedule.superstep_of(v);
                (step, order_pos[v.index()], proc, v)
            })
            .collect();
        keyed.sort_unstable();
        for (_, _, proc, v) in keyed {
            seq[proc.index()].push(v);
        }
        // Input-use positions per processor.
        let mut use_positions = vec![vec![Vec::new(); n]; p];
        for (pi, s) in seq.iter().enumerate() {
            for (pos, &v) in s.iter().enumerate() {
                for &u in self_parents(dag, v) {
                    use_positions[pi][u.index()].push(pos);
                }
            }
        }
        // Remaining global use counts.
        let mut remaining_uses = vec![0usize; n];
        for s in &seq {
            for &v in s {
                for &u in dag.parents(v) {
                    remaining_uses[u.index()] += 1;
                }
            }
        }
        let mut blue = vec![false; n];
        for v in dag.sources() {
            blue[v.index()] = true;
        }
        let mut is_required_output: Vec<bool> = dag.nodes().map(|v| dag.is_sink(v)).collect();
        for &v in required_outputs {
            is_required_output[v.index()] = true;
        }
        Converter {
            dag,
            arch,
            policy,
            config,
            seq,
            cursor: vec![0; p],
            use_positions,
            use_ptr: vec![vec![0; n]; p],
            cached: vec![vec![false; n]; p],
            used: vec![0.0; p],
            last_use: vec![vec![0; n]; p],
            clock: vec![0; p],
            blue,
            remaining_uses,
            is_required_output,
        }
    }

    fn run(mut self) -> MbspSchedule {
        let p = self.arch.processors;
        let mut schedule = MbspSchedule::new(p);
        let total: usize = self.seq.iter().map(|s| s.len()).sum();
        let mut executed = 0usize;
        // Each superstep makes progress (a compute or a load); the bound below is a
        // generous safety net against construction bugs.
        let max_supersteps = 4 * total + 4 * self.dag.num_nodes() + 8;

        while self.cursor.iter().zip(&self.seq).any(|(&c, s)| c < s.len()) {
            assert!(
                schedule.num_supersteps() <= max_supersteps,
                "two-stage conversion is not making progress"
            );
            // Snapshot of the blue set at the beginning of the superstep: loads in
            // this superstep may only read values that were already in slow memory
            // (saves of the same superstep are not relied upon, which keeps the
            // construction simple and always valid).
            let blue_snapshot = self.blue.clone();
            let step = schedule.push_empty_superstep();

            for pi in 0..p {
                let proc = ProcId::new(pi);
                let phases = step.proc_mut(proc);

                // ---- 1. Compute phase: maximal segment without new I/O. ----
                let mut computed_here: Vec<NodeId> = Vec::new();
                loop {
                    let pos = self.cursor[pi];
                    if pos >= self.seq[pi].len() {
                        break;
                    }
                    let v = self.seq[pi][pos];
                    // All parents must already be cached.
                    if self.dag.parents(v).iter().any(|&u| !self.cached[pi][u.index()]) {
                        break;
                    }
                    // Make room for the output of v by dropping dead values only
                    // (no I/O allowed inside a compute phase).
                    let needed = self.dag.memory_weight(v);
                    if !self.make_room_with_dead_values(pi, needed, phases, v) {
                        break;
                    }
                    // Execute the compute step.
                    phases.compute.push(ComputePhaseStep::Compute(v));
                    self.cached[pi][v.index()] = true;
                    self.used[pi] += self.dag.memory_weight(v);
                    self.clock[pi] += 1;
                    self.last_use[pi][v.index()] = self.clock[pi];
                    for &u in self.dag.parents(v) {
                        self.last_use[pi][u.index()] = self.clock[pi];
                        self.remaining_uses[u.index()] -= 1;
                    }
                    self.cursor[pi] += 1;
                    computed_here.push(v);
                    executed += 1;
                }

                // ---- 2. Save phase: persist computed values that need it. ----
                for &v in &computed_here {
                    if self.blue[v.index()] {
                        continue;
                    }
                    let has_remote_child = self.dag.children(v).iter().any(|&c| {
                        // A child computed on a different processor will need to
                        // load v from slow memory.
                        !self.dag.is_source(c) && !self.seq[pi].contains(&c)
                    });
                    if self.is_required_output[v.index()] || has_remote_child {
                        phases.save.push(v);
                        self.blue[v.index()] = true;
                    }
                }

                // ---- 3 & 4. Eviction and loads for the next segment. ----
                self.plan_io(pi, phases, &blue_snapshot);
                let _ = executed;
            }
        }
        schedule.remove_empty_supersteps();
        schedule
    }

    /// Drops dead cached values (not needed by any future compute and not an
    /// unsaved required output) until `needed` additional space is available.
    /// Returns false if that is impossible without real evictions.
    fn make_room_with_dead_values(
        &mut self,
        pi: usize,
        needed: f64,
        phases: &mut mbsp_model::ProcPhases,
        about_to_compute: NodeId,
    ) -> bool {
        let r = self.arch.cache_size;
        if self.used[pi] + needed <= r + 1e-9 {
            return true;
        }
        let parents: Vec<NodeId> = self.dag.parents(about_to_compute).to_vec();
        let dead: Vec<NodeId> = (0..self.dag.num_nodes())
            .map(NodeId::new)
            .filter(|&v| {
                self.cached[pi][v.index()]
                    && !parents.contains(&v)
                    && self.remaining_uses[v.index()] == 0
                    && (!self.is_required_output[v.index()] || self.blue[v.index()])
            })
            .collect();
        for v in dead {
            if self.used[pi] + needed <= r + 1e-9 {
                break;
            }
            phases.compute.push(ComputePhaseStep::Delete(v));
            self.cached[pi][v.index()] = false;
            self.used[pi] -= self.dag.memory_weight(v);
        }
        self.used[pi] + needed <= r + 1e-9
    }

    /// Plans the save/delete/load phases that prepare the next compute segment of
    /// processor `pi`.
    fn plan_io(&mut self, pi: usize, phases: &mut mbsp_model::ProcPhases, blue_snapshot: &[bool]) {
        let pos = self.cursor[pi];
        if pos >= self.seq[pi].len() {
            return;
        }
        let r = self.arch.cache_size;
        let next = self.seq[pi][pos];
        // Inputs of the next compute step that are missing from the cache and
        // already available in slow memory.
        let missing: Vec<NodeId> = self
            .dag
            .parents(next)
            .iter()
            .copied()
            .filter(|&u| !self.cached[pi][u.index()])
            .collect();
        let loadable: Vec<NodeId> = missing
            .iter()
            .copied()
            .filter(|&u| blue_snapshot[u.index()])
            .collect();
        if loadable.len() < missing.len() {
            // Some input is not yet in slow memory (its producer has not caught up);
            // this processor simply waits for a later superstep.
            return;
        }
        let missing_weight: f64 = loadable.iter().map(|&u| self.dag.memory_weight(u)).sum();
        let target_free = missing_weight + self.dag.memory_weight(next);

        // Evict until the next compute step fits.
        if self.used[pi] + target_free > r + 1e-9 {
            let keep: Vec<NodeId> = self.dag.parents(next).to_vec();
            let victims: Vec<NodeId> = (0..self.dag.num_nodes())
                .map(NodeId::new)
                .filter(|&v| self.cached[pi][v.index()] && !keep.contains(&v) && v != next)
                .collect();
            let candidates: Vec<CandidateVictim> = victims
                .into_iter()
                .map(|v| CandidateVictim {
                    node: v,
                    weight: self.dag.memory_weight(v),
                    next_use: self.next_use(pi, v),
                    last_use: self.last_use[pi][v.index()],
                    has_blue: self.blue[v.index()],
                    needed_later: self.remaining_uses[v.index()] > 0
                        || (self.is_required_output[v.index()] && !self.blue[v.index()]),
                })
                .collect();
            let ranked = self.policy.rank(&candidates);
            let needed_map: std::collections::HashMap<NodeId, bool> =
                candidates.iter().map(|c| (c.node, c.needed_later)).collect();
            for v in ranked {
                if self.used[pi] + target_free <= r + 1e-9 {
                    break;
                }
                // A victim that is still needed and not yet in slow memory must be
                // saved before it is deleted (save phase precedes delete phase).
                if needed_map[&v] && !self.blue[v.index()] {
                    phases.save.push(v);
                    self.blue[v.index()] = true;
                }
                phases.delete.push(v);
                self.cached[pi][v.index()] = false;
                self.used[pi] -= self.dag.memory_weight(v);
            }
        }

        // Required loads for the next compute step.
        let mut planned_load_weight = 0.0;
        for &u in &loadable {
            if self.used[pi] + planned_load_weight + self.dag.memory_weight(u) > r + 1e-9 {
                // Should not happen when r >= r0; bail out conservatively.
                break;
            }
            phases.load.push(u);
            self.cached[pi][u.index()] = true;
            planned_load_weight += self.dag.memory_weight(u);
        }
        self.used[pi] += planned_load_weight;

        // Greedy prefetch: extend the loads with the inputs of further compute steps
        // while everything (inputs plus the outputs produced in between) still fits.
        if self.config.prefetch {
            let mut virtual_used = self.used[pi] + self.dag.memory_weight(next);
            let mut virtually_cached: Vec<NodeId> = vec![next];
            let mut look = pos + 1;
            while look < self.seq[pi].len() {
                let w = self.seq[pi][look];
                let extra_inputs: Vec<NodeId> = self
                    .dag
                    .parents(w)
                    .iter()
                    .copied()
                    .filter(|&u| !self.cached[pi][u.index()] && !virtually_cached.contains(&u))
                    .collect();
                if extra_inputs.iter().any(|&u| !blue_snapshot[u.index()]) {
                    break;
                }
                let extra_weight: f64 =
                    extra_inputs.iter().map(|&u| self.dag.memory_weight(u)).sum();
                if virtual_used + extra_weight + self.dag.memory_weight(w) > r + 1e-9 {
                    break;
                }
                for u in extra_inputs {
                    phases.load.push(u);
                    self.cached[pi][u.index()] = true;
                    self.used[pi] += self.dag.memory_weight(u);
                }
                virtual_used += extra_weight + self.dag.memory_weight(w);
                virtually_cached.push(w);
                look += 1;
            }
        }
    }

    /// Position of the next use of `v` as an input on processor `pi`, if any.
    fn next_use(&mut self, pi: usize, v: NodeId) -> Option<usize> {
        let positions = &self.use_positions[pi][v.index()];
        let ptr = &mut self.use_ptr[pi][v.index()];
        while *ptr < positions.len() && positions[*ptr] < self.cursor[pi] {
            *ptr += 1;
        }
        positions.get(*ptr).copied()
    }
}

/// Helper mirroring `dag.parents(v)` (kept separate so the sequence construction in
/// `Converter::new` reads naturally).
fn self_parents<'d>(dag: &'d CompDag, v: NodeId) -> &'d [NodeId] {
    dag.parents(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClairvoyantPolicy, LruPolicy};
    use mbsp_model::{sync_cost, CostModel, MbspInstance};
    use mbsp_sched::{BspScheduler, DfsScheduler, GreedyBspScheduler};

    fn instances() -> Vec<MbspInstance> {
        mbsp_gen::tiny_dataset(42)
            .into_iter()
            .map(|inst| {
                MbspInstance::with_cache_factor(inst.dag, Architecture::paper_default(0.0), 3.0)
            })
            .collect()
    }

    #[test]
    fn two_stage_schedules_are_valid_on_the_tiny_dataset() {
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        let sched = GreedyBspScheduler::new();
        for inst in instances() {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let mbsp = conv.schedule(inst.dag(), inst.arch(), &bsp, &policy);
            mbsp.validate(inst.dag(), inst.arch())
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name()));
            // Every non-source node is computed exactly once (no recomputation).
            let stats = mbsp.statistics(inst.dag(), inst.arch());
            let non_sources = inst.dag().nodes().filter(|&v| !inst.dag().is_source(v)).count();
            assert_eq!(stats.computes, non_sources, "{}", inst.name());
            assert_eq!(stats.recomputed_nodes, 0);
        }
    }

    #[test]
    fn lru_policy_also_produces_valid_schedules() {
        let conv = TwoStageScheduler::new();
        let policy = LruPolicy::new();
        let sched = GreedyBspScheduler::new();
        for inst in instances().into_iter().take(6) {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let mbsp = conv.schedule(inst.dag(), inst.arch(), &bsp, &policy);
            mbsp.validate(inst.dag(), inst.arch())
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name()));
        }
    }

    #[test]
    fn single_processor_dfs_baseline_is_valid() {
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        for inst in mbsp_gen::tiny_dataset(42).into_iter().take(5) {
            let arch = Architecture::single_processor(inst.dag.minimal_cache_size() * 3.0, 1.0);
            let instance = MbspInstance::new(inst.dag, arch);
            let bsp = DfsScheduler::new().schedule(instance.dag(), instance.arch());
            let mbsp = conv.schedule(instance.dag(), instance.arch(), &bsp, &policy);
            mbsp.validate(instance.dag(), instance.arch()).unwrap();
        }
    }

    #[test]
    fn tight_cache_still_produces_valid_schedules() {
        // r = r0 is the minimal feasible cache size: the conversion must still work.
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        let sched = GreedyBspScheduler::new();
        for inst in mbsp_gen::tiny_dataset(7).into_iter().take(6) {
            let instance =
                MbspInstance::with_cache_factor(inst.dag, Architecture::paper_default(0.0), 1.0);
            let bsp = sched.schedule(instance.dag(), instance.arch());
            let mbsp = conv.schedule(instance.dag(), instance.arch(), &bsp, &policy);
            mbsp.validate(instance.dag(), instance.arch())
                .unwrap_or_else(|e| panic!("{}: {e}", instance.name()));
        }
    }

    #[test]
    fn clairvoyant_is_not_worse_than_lru_on_average() {
        // The clairvoyant policy should produce schedules that are at least as good
        // as LRU in aggregate (it has strictly more information).
        let conv = TwoStageScheduler::new();
        let sched = GreedyBspScheduler::new();
        let mut clair_total = 0.0;
        let mut lru_total = 0.0;
        for inst in instances() {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let a = conv.schedule(inst.dag(), inst.arch(), &bsp, &ClairvoyantPolicy::new());
            let b = conv.schedule(inst.dag(), inst.arch(), &bsp, &LruPolicy::new());
            clair_total += sync_cost(&a, inst.dag(), inst.arch()).total;
            lru_total += sync_cost(&b, inst.dag(), inst.arch()).total;
        }
        assert!(
            clair_total <= lru_total * 1.02,
            "clairvoyant ({clair_total}) should not be notably worse than LRU ({lru_total})"
        );
    }

    #[test]
    fn prefetching_reduces_supersteps_without_breaking_validity() {
        let sched = GreedyBspScheduler::new();
        let policy = ClairvoyantPolicy::new();
        for inst in instances().into_iter().take(4) {
            let bsp = sched.schedule(inst.dag(), inst.arch());
            let with = TwoStageScheduler::with_config(TwoStageConfig { prefetch: true })
                .schedule(inst.dag(), inst.arch(), &bsp, &policy);
            let without = TwoStageScheduler::with_config(TwoStageConfig { prefetch: false })
                .schedule(inst.dag(), inst.arch(), &bsp, &policy);
            with.validate(inst.dag(), inst.arch()).unwrap();
            without.validate(inst.dag(), inst.arch()).unwrap();
            assert!(with.num_supersteps() <= without.num_supersteps());
        }
    }

    #[test]
    fn async_cost_is_computable_on_converted_schedules() {
        let conv = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        let sched = GreedyBspScheduler::new();
        let inst = &instances()[0];
        let bsp = sched.schedule(inst.dag(), inst.arch());
        let mbsp = conv.schedule(inst.dag(), inst.arch(), &bsp, &policy);
        let sync = CostModel::Synchronous.evaluate(&mbsp, inst.dag(), inst.arch());
        let arch0 = inst.arch().with_latency(0.0);
        let asynchronous = CostModel::Asynchronous.evaluate(&mbsp, inst.dag(), &arch0);
        let sync0 = CostModel::Synchronous.evaluate(&mbsp, inst.dag(), &arch0);
        assert!(sync > 0.0);
        assert!(asynchronous <= sync0 + 1e-9);
    }
}
