//! Differential property tests: the sparse revised simplex against the dense
//! tableau oracle.
//!
//! The two solvers share no pivoting code — the revised simplex works on a CSC
//! standard form with native bound handling, LU+eta basis updates and partial
//! pricing, while the dense oracle shifts variables, materializes bound rows
//! and sweeps a full tableau — so agreement on hundreds of seeded random
//! problems is strong evidence that both are correct. Every instance is
//! deterministic (ChaCha8 streams keyed by a fixed seed), so a failure here is
//! a reproducible counterexample.

use lp_solver::dense::{solve_lp_dense, solve_lp_dense_with_bounds};
use lp_solver::{
    solve_lp, solve_lp_with_bounds, BranchBoundSolver, ConstraintSense, LinExpr, LpProblem,
    LpStatus, MipStatus, SolverLimits, VarId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Number of random bounded LPs in the pure-LP sweep.
const NUM_LPS: usize = 140;
/// Number of MBSP-shaped random ILPs in the MIP sweep.
const NUM_ILPS: usize = 60;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A random bounded LP: finite lower bounds (the dense oracle shifts by them),
/// a mix of finite and infinite uppers, random sparse rows of all three senses.
fn random_lp(rng: &mut ChaCha8Rng) -> LpProblem {
    let n = rng.gen_range(2..=12usize);
    let m = rng.gen_range(1..=10usize);
    let mut p = LpProblem::new();
    let mut vars = Vec::with_capacity(n);
    for j in 0..n {
        let lower = if rng.gen_bool(0.3) {
            rng.gen_range(-5.0..0.0)
        } else {
            0.0
        };
        let upper = if rng.gen_bool(0.3) {
            f64::INFINITY
        } else {
            lower + rng.gen_range(0.5..8.0)
        };
        let objective = (rng.gen_range(-10.0..10.0f64) * 2.0).round() / 2.0;
        vars.push(p.add_continuous(format!("x{j}"), lower, upper, objective));
    }
    for i in 0..m {
        let mut expr = LinExpr::new();
        let mut nonzero = false;
        for &v in &vars {
            if rng.gen_bool(0.45) {
                let a = (rng.gen_range(-5.0..5.0f64)).round();
                if a != 0.0 {
                    expr.add(v, a);
                    nonzero = true;
                }
            }
        }
        if !nonzero {
            expr.add(vars[rng.gen_range(0..n)], 1.0);
        }
        let sense = match rng.gen_range(0..10u32) {
            0..=5 => ConstraintSense::LessEqual,
            6..=8 => ConstraintSense::GreaterEqual,
            _ => ConstraintSense::Equal,
        };
        let rhs = (rng.gen_range(-12.0..12.0f64)).round();
        p.add_constraint(format!("c{i}"), expr, sense, rhs);
    }
    p
}

/// Checks a claimed-optimal revised solution for primal feasibility.
fn assert_primal_feasible(p: &LpProblem, values: &[f64], tag: &str) {
    for (j, v) in p.variables.iter().enumerate() {
        assert!(
            values[j] >= v.lower - 1e-6 && values[j] <= v.upper + 1e-6,
            "{tag}: variable {j} = {} outside [{}, {}]",
            values[j],
            v.lower,
            v.upper
        );
    }
    for c in &p.constraints {
        assert!(
            c.is_satisfied(values, 1e-5),
            "{tag}: constraint {} violated",
            c.name
        );
    }
}

fn assert_lp_agreement(p: &LpProblem, seed_tag: &str) {
    let sparse = solve_lp(p);
    let dense = solve_lp_dense(p);
    // The dense oracle can hit its iteration limit where the revised simplex
    // converges (or vice versa); only hard statuses must agree.
    if sparse.status == LpStatus::IterationLimit || dense.status == LpStatus::IterationLimit {
        return;
    }
    assert_eq!(sparse.status, dense.status, "{seed_tag}: status mismatch");
    if sparse.status == LpStatus::Optimal {
        let scale = 1.0 + dense.objective.abs();
        assert!(
            (sparse.objective - dense.objective).abs() <= 1e-5 * scale,
            "{seed_tag}: objective {} (sparse) vs {} (dense)",
            sparse.objective,
            dense.objective
        );
        assert_primal_feasible(p, &sparse.values, seed_tag);
    }
}

#[test]
fn random_bounded_lps_match_the_dense_oracle() {
    let mut r = rng(0xD1FF_0001);
    for k in 0..NUM_LPS {
        let p = random_lp(&mut r);
        assert_lp_agreement(&p, &format!("lp[{k}]"));
    }
}

#[test]
fn random_lps_with_tightened_bounds_match_the_dense_oracle() {
    // Exercise the solve_lp_with_bounds path (what branch and bound does).
    let mut r = rng(0xD1FF_0002);
    for k in 0..30 {
        let p = random_lp(&mut r);
        let n = p.num_variables();
        let mut lower: Vec<f64> = p.variables.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = p.variables.iter().map(|v| v.upper).collect();
        // Tighten a couple of random variables to a sub-box.
        for _ in 0..2 {
            let j = r.gen_range(0..n);
            if upper[j].is_finite() {
                let mid = lower[j] + (upper[j] - lower[j]) * r.gen_range(0.2..0.8);
                if r.gen_bool(0.5) {
                    upper[j] = mid;
                } else {
                    lower[j] = mid;
                }
            }
        }
        let sparse = solve_lp_with_bounds(&p, &lower, &upper);
        let dense = solve_lp_dense_with_bounds(&p, &lower, &upper);
        if sparse.status == LpStatus::IterationLimit || dense.status == LpStatus::IterationLimit {
            continue;
        }
        assert_eq!(sparse.status, dense.status, "bounded lp[{k}]");
        if sparse.status == LpStatus::Optimal {
            let scale = 1.0 + dense.objective.abs();
            assert!(
                (sparse.objective - dense.objective).abs() <= 1e-5 * scale,
                "bounded lp[{k}]: {} vs {}",
                sparse.objective,
                dense.objective
            );
        }
    }
}

/// An MBSP-shaped random ILP: binary `x[v][t]` variables on a node × time grid
/// with "computed exactly/at most once" rows, precedence rows (`v` can run at
/// `t` only after its parent ran strictly earlier) and per-step capacity rows —
/// the structural skeleton of the paper's scheduling formulation.
fn random_mbsp_ilp(rng: &mut ChaCha8Rng) -> LpProblem {
    let nodes = rng.gen_range(3..=6usize);
    let steps = rng.gen_range(3..=4usize);
    let mut p = LpProblem::new();
    let mut x = vec![vec![VarId(0); steps]; nodes];
    for (v, row) in x.iter_mut().enumerate() {
        for (t, slot) in row.iter_mut().enumerate() {
            // Cost favours early, cheap steps with some noise.
            let cost = rng.gen_range(0.0..4.0f64).round() + t as f64;
            *slot = p.add_binary(format!("x_{v}_{t}"), cost);
        }
    }
    for (v, row) in x.iter().enumerate() {
        let mut once = LinExpr::new();
        for &var in row {
            once.add(var, 1.0);
        }
        // Most nodes must run; some are optional with negative profit.
        if rng.gen_bool(0.8) {
            p.add_constraint(format!("run{v}"), once, ConstraintSense::Equal, 1.0);
        } else {
            p.add_constraint(format!("opt{v}"), once, ConstraintSense::LessEqual, 1.0);
        }
    }
    // Precedence chains: node v depends on v-1 for a random subset.
    for v in 1..nodes {
        if rng.gen_bool(0.6) {
            for t in 0..steps {
                let mut expr = LinExpr::term(x[v][t], 1.0);
                for t2 in 0..t {
                    expr.add(x[v - 1][t2], -1.0);
                }
                p.add_constraint(
                    format!("prec{v}_{t}"),
                    expr,
                    ConstraintSense::LessEqual,
                    0.0,
                );
            }
        }
    }
    // Per-step capacity (the one-op-per-processor analogue).
    let cap = rng.gen_range(1..=2u32) as f64;
    for t in 0..steps {
        let mut expr = LinExpr::new();
        for row in &x {
            expr.add(row[t], 1.0);
        }
        p.add_constraint(format!("cap{t}"), expr, ConstraintSense::LessEqual, cap);
    }
    p
}

#[test]
fn mbsp_shaped_ilps_match_the_dense_oracle_through_branch_and_bound() {
    let mut r = rng(0xD1FF_0003);
    let limits = SolverLimits {
        max_nodes: 20_000,
        time_limit: Duration::from_secs(10),
        relative_gap: 1e-9,
    };
    for k in 0..NUM_ILPS {
        let p = random_mbsp_ilp(&mut r);
        let sparse = BranchBoundSolver::with_limits(limits).solve(&p);
        let dense = BranchBoundSolver::with_limits(limits)
            .with_dense_relaxation(true)
            .solve(&p);
        assert_eq!(sparse.status, dense.status, "ilp[{k}]: status mismatch");
        if sparse.status == MipStatus::Optimal {
            assert!(
                (sparse.objective - dense.objective).abs() <= 1e-5 * (1.0 + dense.objective.abs()),
                "ilp[{k}]: objective {} (sparse) vs {} (dense)",
                sparse.objective,
                dense.objective
            );
            assert!(
                p.is_feasible(&sparse.values, 1e-5),
                "ilp[{k}]: infeasible incumbent"
            );
        }
    }
}

#[test]
fn degenerate_lps_with_duplicated_rows_agree() {
    // Heavy degeneracy: many identical and parallel rows create ties in every
    // ratio test; both solvers must still terminate and agree.
    let mut r = rng(0xD1FF_0004);
    for k in 0..15 {
        let n = r.gen_range(3..=6usize);
        let mut p = LpProblem::new();
        let vars: Vec<VarId> = (0..n)
            .map(|j| p.add_continuous(format!("x{j}"), 0.0, 4.0, -((j % 3) as f64) - 1.0))
            .collect();
        let mut base = LinExpr::new();
        for &v in &vars {
            base.add(v, 1.0);
        }
        for c in 0..6 {
            p.add_constraint(
                format!("dup{c}"),
                base.clone(),
                ConstraintSense::LessEqual,
                6.0,
            );
        }
        for (j, &v) in vars.iter().enumerate() {
            p.add_constraint(
                format!("cap{j}"),
                LinExpr::term(v, 1.0),
                ConstraintSense::LessEqual,
                3.0,
            );
        }
        assert_lp_agreement(&p, &format!("degenerate[{k}]"));
    }
}

#[test]
fn refactorization_stress_long_pivot_chains_agree() {
    // Large enough that the eta file must be refactorized several times within
    // one solve (the refactorization interval is 64 updates).
    let mut r = rng(0xD1FF_0005);
    let n = 90;
    let mut p = LpProblem::new();
    let vars: Vec<VarId> = (0..n)
        .map(|j| {
            let c = -(1.0 + (j % 7) as f64) + r.gen_range(-0.25..0.25);
            p.add_continuous(format!("x{j}"), 0.0, 2.0, c)
        })
        .collect();
    // Coupled chain rows force long pivot sequences.
    for j in 0..n - 1 {
        p.add_constraint(
            format!("chain{j}"),
            LinExpr::term(vars[j], 1.0).plus(vars[j + 1], 1.0),
            ConstraintSense::LessEqual,
            3.0,
        );
    }
    let mut all = LinExpr::new();
    for &v in &vars {
        all.add(v, 1.0);
    }
    p.add_constraint("total", all, ConstraintSense::LessEqual, 0.6 * n as f64);
    assert_lp_agreement(&p, "refactor-stress");
}

#[test]
fn infeasible_and_unbounded_families_agree() {
    let mut r = rng(0xD1FF_0006);
    for k in 0..20 {
        // Infeasible: x + y >= big with tight boxes.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 1.0, r.gen_range(-2.0..2.0));
        let y = p.add_continuous("y", 0.0, 1.0, r.gen_range(-2.0..2.0));
        p.add_constraint(
            "sum",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::GreaterEqual,
            2.5 + r.gen_range(0.0..3.0),
        );
        assert_lp_agreement(&p, &format!("infeasible[{k}]"));

        // Unbounded: a cost ray with no upper bound.
        let mut q = LpProblem::new();
        let u = q.add_continuous("u", 0.0, f64::INFINITY, -1.0);
        let w = q.add_continuous("w", 0.0, f64::INFINITY, r.gen_range(0.0..1.0));
        q.add_constraint(
            "link",
            LinExpr::term(u, -1.0).plus(w, 1.0),
            ConstraintSense::LessEqual,
            r.gen_range(0.0..4.0),
        );
        assert_lp_agreement(&q, &format!("unbounded[{k}]"));
    }
}

#[test]
fn the_random_ilp_family_contains_both_feasible_and_infeasible_instances() {
    let mut r = rng(0xD1FF_0003);
    let limits = SolverLimits {
        max_nodes: 20_000,
        time_limit: Duration::from_secs(10),
        relative_gap: 1e-9,
    };
    let mut optimal = 0;
    let mut infeasible = 0;
    for _ in 0..NUM_ILPS {
        let p = random_mbsp_ilp(&mut r);
        match BranchBoundSolver::with_limits(limits).solve(&p).status {
            MipStatus::Optimal => optimal += 1,
            MipStatus::Infeasible => infeasible += 1,
            _ => {}
        }
    }
    assert!(
        optimal >= 10,
        "only {optimal} optimal instances — family too degenerate"
    );
    assert!(infeasible >= 3, "only {infeasible} infeasible instances");
}
