//! Depth-first branch-and-bound MIP solver on top of the simplex LP relaxation.
//!
//! The solver mirrors how the paper uses COPT: it accepts an **incumbent warm
//! start** (the two-stage baseline schedule encoded as a feasible assignment),
//! it respects a **time limit** and a node limit, and it reports whether the
//! returned solution is proven optimal or only the best found within the
//! limits.
//!
//! Node relaxations are solved by the sparse revised simplex with **basis
//! warm starts**: every child node inherits its parent's optimal basis and,
//! since branching only tightens one variable bound, re-solves with a handful
//! of dual-simplex pivots instead of a cold two-phase start. The warm-start
//! assignment additionally crashes the root basis
//! ([`crate::revised::RevisedSimplex::solve_from_point`]), so a feasible
//! incumbent makes even the root Phase-1-free. For differential testing and
//! benchmarking, [`BranchBoundSolver::with_dense_relaxation`] switches every
//! node to the dense-tableau oracle solved from scratch (the seed behaviour).

use crate::dense::solve_lp_dense_with_bounds_deadline;
use crate::model::{LpProblem, VarType};
use crate::revised::{Basis, LpSolution, LpStatus, RevisedSimplex};
use mbsp_pool::CancelToken;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Termination status of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// A feasible solution was found but optimality was not proven within the
    /// limits.
    Feasible,
    /// No feasible solution exists.
    Infeasible,
    /// No feasible solution was found within the limits (the problem may still be
    /// feasible).
    LimitReached,
}

/// Result of a MIP solve.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Termination status.
    pub status: MipStatus,
    /// Best objective value found (`f64::INFINITY` if none).
    pub objective: f64,
    /// Best assignment found (empty if none).
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Best lower bound proven on the optimal objective.
    pub best_bound: f64,
}

/// Search limits of the branch-and-bound solver.
#[derive(Debug, Clone, Copy)]
pub struct SolverLimits {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Wall-clock time limit.
    pub time_limit: Duration,
    /// Relative optimality gap at which the search stops.
    pub relative_gap: f64,
}

impl Default for SolverLimits {
    fn default() -> Self {
        SolverLimits {
            max_nodes: 50_000,
            time_limit: Duration::from_secs(30),
            relative_gap: 1e-6,
        }
    }
}

/// Branch-and-bound MIP solver.
#[derive(Debug, Clone, Default)]
pub struct BranchBoundSolver {
    limits: SolverLimits,
    /// Optional warm-start assignment (must be feasible to be used).
    warm_start: Option<Vec<f64>>,
    /// Solve node relaxations with the dense-tableau oracle instead of the
    /// warm-started revised simplex (differential testing / benchmarking).
    dense_relaxation: bool,
    /// Optional cooperative cancellation, observed at node pops.
    cancel: Option<CancelToken>,
}

/// One open node of the depth-first search.
struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// The parent's optimal basis (shared between both children).
    basis: Option<Rc<Basis>>,
}

impl BranchBoundSolver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        BranchBoundSolver::default()
    }

    /// Creates a solver with explicit limits.
    pub fn with_limits(limits: SolverLimits) -> Self {
        BranchBoundSolver {
            limits,
            ..Default::default()
        }
    }

    /// Provides an incumbent warm-start assignment; if it is feasible it is
    /// used to prune the search from the beginning *and* to crash the root
    /// basis of the revised simplex (mirroring the paper's initialisation of
    /// the ILP solver with the baseline schedule).
    pub fn with_warm_start(mut self, assignment: Vec<f64>) -> Self {
        self.warm_start = Some(assignment);
        self
    }

    /// Solves every node relaxation with the dense-tableau oracle from a cold
    /// start (the pre-revised-simplex behaviour). Only useful for differential
    /// testing and for the recorded `BENCH_solver.json` baseline.
    pub fn with_dense_relaxation(mut self, dense: bool) -> Self {
        self.dense_relaxation = dense;
        self
    }

    /// Attaches a cooperative [`CancelToken`]. The search observes it only at
    /// the deterministic node-pop boundary: a cancelled solve returns the best
    /// incumbent found so far with `proven == false`, and the set of explored
    /// nodes up to the observation point is identical to an uncancelled run's
    /// prefix.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Solves the MIP.
    pub fn solve(&self, problem: &LpProblem) -> MipSolution {
        let start = Instant::now();
        // Hard wall-clock deadline, also enforced inside each LP relaxation's
        // pivot loop — a single large relaxation must not blow the budget.
        let deadline = start.checked_add(self.limits.time_limit);
        let n = problem.num_variables();
        let tol = 1e-6;

        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        if let Some(ws) = &self.warm_start {
            if ws.len() == n && problem.is_feasible(ws, 1e-6) {
                incumbent = Some((problem.objective_value(ws), ws.clone()));
            }
        }

        // The shared relaxation solver (sparse path); bounds are swapped in
        // per node, bases are inherited parent → child.
        let mut simplex = if self.dense_relaxation {
            None
        } else {
            Some(RevisedSimplex::new(problem))
        };

        let root_lower: Vec<f64> = problem.variables.iter().map(|v| v.lower).collect();
        let root_upper: Vec<f64> = problem.variables.iter().map(|v| v.upper).collect();

        // Depth-first stack.
        let mut stack: Vec<Node> = vec![Node {
            lower: root_lower,
            upper: root_upper,
            basis: None,
        }];
        let mut nodes = 0usize;
        let mut best_bound = f64::NEG_INFINITY;
        let mut open_bounds: Vec<f64> = Vec::new();
        let mut proven = true;

        while let Some(node) = stack.pop() {
            if nodes >= self.limits.max_nodes
                || start.elapsed() >= self.limits.time_limit
                || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            {
                proven = false;
                break;
            }
            nodes += 1;
            let (relax, solved_basis): (LpSolution, Option<Rc<Basis>>) = match &mut simplex {
                Some(solver) => {
                    solver.set_structural_bounds(&node.lower, &node.upper);
                    let sol = match (&node.basis, &self.warm_start) {
                        (Some(basis), _) => solver.solve_with_basis(basis, deadline),
                        // Root node: crash towards the incumbent when we have one.
                        (None, Some(ws)) if ws.len() == n => solver.solve_from_point(ws, deadline),
                        (None, _) => solver.solve(deadline),
                    };
                    let basis =
                        (sol.status == LpStatus::Optimal).then(|| Rc::new(solver.basis_snapshot()));
                    (sol, basis)
                }
                None => (
                    solve_lp_dense_with_bounds_deadline(
                        problem,
                        &node.lower,
                        &node.upper,
                        deadline,
                    ),
                    None,
                ),
            };
            match relax.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    // An unbounded relaxation of a node: the MIP is unbounded or the
                    // formulation is degenerate; treat conservatively as unproven.
                    proven = false;
                    continue;
                }
                LpStatus::IterationLimit => {
                    proven = false;
                    continue;
                }
                LpStatus::Optimal => {}
            }
            let bound = relax.objective;
            open_bounds.push(bound);
            // Prune by bound.
            if let Some((best_obj, _)) = &incumbent {
                if bound >= *best_obj - self.limits.relative_gap * best_obj.abs().max(1.0) {
                    continue;
                }
            }
            // Find a fractional integer variable to branch on (most fractional).
            let mut branch_var: Option<(usize, f64)> = None;
            let mut best_frac = tol;
            for (i, v) in problem.variables.iter().enumerate() {
                if matches!(v.var_type, VarType::Binary | VarType::Integer) {
                    let x = relax.values[i];
                    let frac = (x - x.round()).abs();
                    if frac > best_frac {
                        best_frac = frac;
                        branch_var = Some((i, x));
                    }
                }
            }
            match branch_var {
                None => {
                    // Integral solution: candidate incumbent.
                    let mut rounded = relax.values.clone();
                    for (i, v) in problem.variables.iter().enumerate() {
                        if matches!(v.var_type, VarType::Binary | VarType::Integer) {
                            rounded[i] = rounded[i].round();
                        }
                    }
                    if problem.is_feasible(&rounded, 1e-5) {
                        let obj = problem.objective_value(&rounded);
                        if incumbent.as_ref().map_or(true, |(best, _)| obj < *best) {
                            incumbent = Some((obj, rounded));
                        }
                    }
                }
                Some((i, x)) => {
                    // Branch: x <= floor, x >= ceil. Push the "floor" branch last so
                    // it is explored first (depth-first dive towards 0 for binaries).
                    // Both children start from this node's optimal basis.
                    let mut up_lower = node.lower.clone();
                    up_lower[i] = x.ceil();
                    let mut down_upper = node.upper.clone();
                    down_upper[i] = x.floor();
                    if up_lower[i] <= node.upper[i] + tol {
                        stack.push(Node {
                            lower: up_lower,
                            upper: node.upper.clone(),
                            basis: solved_basis.clone(),
                        });
                    }
                    if node.lower[i] <= down_upper[i] + tol {
                        stack.push(Node {
                            lower: node.lower,
                            upper: down_upper,
                            basis: solved_basis,
                        });
                    }
                }
            }
        }
        if !stack.is_empty() {
            proven = false;
        }
        if !open_bounds.is_empty() {
            best_bound = open_bounds.iter().copied().fold(f64::INFINITY, f64::min);
        }

        match incumbent {
            Some((objective, values)) => MipSolution {
                status: if proven {
                    MipStatus::Optimal
                } else {
                    MipStatus::Feasible
                },
                objective,
                values,
                nodes_explored: nodes,
                best_bound: if proven { objective } else { best_bound },
            },
            None => MipSolution {
                status: if proven {
                    MipStatus::Infeasible
                } else {
                    MipStatus::LimitReached
                },
                objective: f64::INFINITY,
                values: vec![],
                nodes_explored: nodes,
                best_bound,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinExpr, LpProblem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // max 10x1 + 13x2 + 7x3  s.t. 3x1 + 4x2 + 2x3 <= 6, binary.
        // Optimum: x1 = 0, x2 = 1, x3 = 1 -> 20.
        let mut p = LpProblem::new();
        let x1 = p.add_binary("x1", -10.0);
        let x2 = p.add_binary("x2", -13.0);
        let x3 = p.add_binary("x3", -7.0);
        p.add_constraint(
            "cap",
            LinExpr::term(x1, 3.0).plus(x2, 4.0).plus(x3, 2.0),
            ConstraintSense::LessEqual,
            6.0,
        );
        let sol = BranchBoundSolver::new().solve(&p);
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective, -20.0);
        assert_close(sol.values[x1.index()], 0.0);
        assert_close(sol.values[x2.index()], 1.0);
        assert_close(sol.values[x3.index()], 1.0);
    }

    #[test]
    fn integer_variables_round_correctly() {
        // min x + y  s.t. 2x + 3y >= 12, x,y integer >= 0. Optimum 4 (x=0, y=4).
        let mut p = LpProblem::new();
        let x = p.add_integer("x", 0.0, 10.0, 1.0);
        let y = p.add_integer("y", 0.0, 10.0, 1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 2.0).plus(y, 3.0),
            ConstraintSense::GreaterEqual,
            12.0,
        );
        let sol = BranchBoundSolver::new().solve(&p);
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn infeasible_mip_is_detected() {
        let mut p = LpProblem::new();
        let x = p.add_binary("x", 1.0);
        let y = p.add_binary("y", 1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::GreaterEqual,
            3.0,
        );
        let sol = BranchBoundSolver::new().solve(&p);
        assert_eq!(sol.status, MipStatus::Infeasible);
    }

    #[test]
    fn warm_start_is_used_as_incumbent() {
        let mut p = LpProblem::new();
        let x = p.add_binary("x", -1.0);
        let y = p.add_binary("y", -1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::LessEqual,
            1.0,
        );
        // With a node limit of 0 the solver cannot explore at all; the warm start is
        // still returned as the best known solution.
        let limits = SolverLimits {
            max_nodes: 0,
            ..Default::default()
        };
        let sol = BranchBoundSolver::with_limits(limits)
            .with_warm_start(vec![1.0, 0.0])
            .solve(&p);
        assert_eq!(sol.status, MipStatus::Feasible);
        assert_close(sol.objective, -1.0);
        // An infeasible warm start is ignored.
        let sol2 = BranchBoundSolver::with_limits(limits)
            .with_warm_start(vec![1.0, 1.0])
            .solve(&p);
        assert_eq!(sol2.status, MipStatus::LimitReached);
    }

    #[test]
    fn mixed_integer_continuous_problem() {
        // min -y - 0.5 x  s.t. y <= x, y binary, 0 <= x <= 0.8 continuous.
        // Optimum: x = 0.8, y = 0 (y=1 impossible since y <= x <= 0.8): objective -0.4.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 0.8, -0.5);
        let y = p.add_binary("y", -1.0);
        p.add_constraint(
            "link",
            LinExpr::term(y, 1.0).plus(x, -1.0),
            ConstraintSense::LessEqual,
            0.0,
        );
        let sol = BranchBoundSolver::new().solve(&p);
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective, -0.4);
        assert_close(sol.values[y.index()], 0.0);
    }

    #[test]
    fn equality_constrained_assignment_problem() {
        // 2x2 assignment problem: minimise cost, each row/column assigned once.
        let costs = [[4.0, 1.0], [2.0, 3.0]];
        let mut p = LpProblem::new();
        let mut vars = [[VAR_ID_DUMMY; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                vars[i][j] = p.add_binary(format!("x{i}{j}"), costs[i][j]);
            }
        }
        for i in 0..2 {
            let expr = LinExpr::term(vars[i][0], 1.0).plus(vars[i][1], 1.0);
            p.add_constraint(format!("row{i}"), expr, ConstraintSense::Equal, 1.0);
            let expr = LinExpr::term(vars[0][i], 1.0).plus(vars[1][i], 1.0);
            p.add_constraint(format!("col{i}"), expr, ConstraintSense::Equal, 1.0);
        }
        let sol = BranchBoundSolver::new().solve(&p);
        assert_eq!(sol.status, MipStatus::Optimal);
        // Best assignment: (0,1) + (1,0) = 1 + 2 = 3.
        assert_close(sol.objective, 3.0);
    }

    /// Placeholder for array initialisation in the assignment-problem test.
    const VAR_ID_DUMMY: crate::model::VarId = crate::model::VarId(usize::MAX);
    use crate::model::VarId;

    #[test]
    fn number_partitioning_instance() {
        // Partition {3, 1, 1, 2, 2, 1} into two sets of equal sum (5 each):
        // minimise the absolute difference via d >= sum1 - sum2, d >= sum2 - sum1.
        let weights = [3.0, 1.0, 1.0, 2.0, 2.0, 1.0];
        let total: f64 = weights.iter().sum();
        let mut p = LpProblem::new();
        let d = p.add_continuous("d", 0.0, total, 1.0);
        let xs: Vec<VarId> = weights
            .iter()
            .enumerate()
            .map(|(i, _)| p.add_binary(format!("x{i}"), 0.0))
            .collect();
        // sum1 = Σ w_i x_i; difference = 2*sum1 - total.
        let mut expr1 = LinExpr::term(d, -1.0);
        let mut expr2 = LinExpr::term(d, -1.0);
        for (i, &w) in weights.iter().enumerate() {
            expr1.add(xs[i], 2.0 * w);
            expr2.add(xs[i], -2.0 * w);
        }
        p.add_constraint("diff1", expr1, ConstraintSense::LessEqual, total);
        p.add_constraint("diff2", expr2, ConstraintSense::LessEqual, -total);
        let sol = BranchBoundSolver::new().solve(&p);
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn node_and_time_limits_are_respected() {
        // A larger knapsack with tight limits terminates quickly with a feasible or
        // limit status.
        let mut p = LpProblem::new();
        let mut expr = LinExpr::new();
        for i in 0..25 {
            let x = p.add_binary(format!("x{i}"), -((i % 7 + 1) as f64));
            expr.add(x, ((i % 5) + 1) as f64);
        }
        p.add_constraint("cap", expr, ConstraintSense::LessEqual, 20.0);
        let limits = SolverLimits {
            max_nodes: 10,
            time_limit: Duration::from_millis(200),
            relative_gap: 1e-6,
        };
        let sol = BranchBoundSolver::with_limits(limits).solve(&p);
        assert!(sol.nodes_explored <= 10);
        assert!(matches!(
            sol.status,
            MipStatus::Feasible | MipStatus::LimitReached | MipStatus::Optimal
        ));
    }

    #[test]
    fn a_pre_cancelled_token_stops_at_the_first_node_pop() {
        let mut p = LpProblem::new();
        let mut expr = LinExpr::new();
        for i in 0..25 {
            let x = p.add_binary(format!("x{i}"), -((i % 7 + 1) as f64));
            expr.add(x, ((i % 5) + 1) as f64);
        }
        p.add_constraint("cap", expr, ConstraintSense::LessEqual, 20.0);
        let token = CancelToken::new();
        token.cancel();
        // A feasible warm start survives cancellation as the returned incumbent.
        let ws = vec![0.0; p.num_variables()];
        let sol = BranchBoundSolver::new()
            .with_warm_start(ws.clone())
            .with_cancel(&token)
            .solve(&p);
        assert_eq!(sol.nodes_explored, 0);
        assert_eq!(sol.status, MipStatus::Feasible);
        assert_eq!(sol.values, ws);
        // Without a warm start the cancelled solve reports the limit.
        let sol = BranchBoundSolver::new().with_cancel(&token).solve(&p);
        assert_eq!(sol.nodes_explored, 0);
        assert_eq!(sol.status, MipStatus::LimitReached);
        // An uncancelled token leaves the solve untouched.
        let free = BranchBoundSolver::new()
            .with_cancel(&CancelToken::new())
            .solve(&p);
        let plain = BranchBoundSolver::new().solve(&p);
        assert_eq!(free.status, plain.status);
        assert_close(free.objective, plain.objective);
        assert_eq!(free.nodes_explored, plain.nodes_explored);
    }

    #[test]
    fn dense_relaxation_oracle_agrees_on_a_small_mip() {
        let mut p = LpProblem::new();
        let x1 = p.add_binary("x1", -10.0);
        let x2 = p.add_binary("x2", -13.0);
        let x3 = p.add_binary("x3", -7.0);
        p.add_constraint(
            "cap",
            LinExpr::term(x1, 3.0).plus(x2, 4.0).plus(x3, 2.0),
            ConstraintSense::LessEqual,
            6.0,
        );
        let sparse = BranchBoundSolver::new().solve(&p);
        let dense = BranchBoundSolver::new()
            .with_dense_relaxation(true)
            .solve(&p);
        assert_eq!(sparse.status, dense.status);
        assert_close(sparse.objective, dense.objective);
    }

    #[test]
    fn warm_start_crashes_the_root_basis_and_still_proves_optimality() {
        // The warm start is optimal here; the solver must both keep it and
        // prove it optimal via the crashed root basis.
        let mut p = LpProblem::new();
        let x = p.add_binary("x", -2.0);
        let y = p.add_binary("y", -3.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::LessEqual,
            1.0,
        );
        let sol = BranchBoundSolver::new()
            .with_warm_start(vec![0.0, 1.0])
            .solve(&p);
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective, -3.0);
    }
}
