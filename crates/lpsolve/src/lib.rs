//! # lp-solver — a small LP/MIP solver (the COPT substitute substrate)
//!
//! The paper solves its scheduling ILPs with the commercial COPT solver, which
//! is not available here. This crate provides a self-contained substitute built
//! around a **sparse revised simplex**:
//!
//! * [`LpProblem`] — a mixed-integer linear-programming model builder
//!   (variables with bounds and types, linear constraints, minimisation
//!   objective) with CSC export ([`LpProblem::structural_csc`]);
//! * [`sparse`] — compressed-sparse-column storage and the bounded standard
//!   form (`A x + s = b`, `l ≤ x ≤ u`; comparison senses encoded as slack
//!   bounds, **no extra row per finite upper bound**);
//! * [`basis`] — LU factorization of the basis with product-form (eta) updates
//!   and periodic refactorization;
//! * [`pricing`] — partial pricing (rotating Dantzig blocks) with a Bland's
//!   rule anti-cycling fallback;
//! * [`revised`] — the bounded-variable primal **and dual** revised simplex
//!   ([`RevisedSimplex`]); the dual simplex re-solves warm-started bases after
//!   bound changes, which is what makes branch-and-bound nodes cheap;
//! * [`branch_bound`] — a depth-first branch-and-bound MIP solver in which
//!   **child nodes inherit the parent's basis** and re-solve via the dual
//!   simplex after a single bound change instead of rebuilding Phase 1 from
//!   scratch; it accepts an incumbent warm start (the two-stage baseline
//!   schedule encoded as a feasible assignment) that both prunes the search
//!   and crashes the root basis, mirroring how the paper initialises COPT;
//! * [`dense`] — the original dense full-tableau two-phase simplex, retained
//!   as a **differential-testing oracle** and benchmark baseline
//!   (`tests/differential.rs` checks both solvers agree on hundreds of seeded
//!   LP/ILP instances).
//!
//! The MBSP ILP formulations (binary compute/save/load/pebble variables per
//! node × processor × step) are overwhelmingly sparse and 0/1-bounded; the
//! revised simplex exploits exactly that, which is what lets the holistic ILP
//! schedulers handle DAG sizes the dense tableau could not touch within its
//! time budget.

pub mod basis;
pub mod branch_bound;
pub mod dense;
pub mod model;
pub mod pricing;
pub mod revised;
pub mod sparse;

pub use branch_bound::{BranchBoundSolver, MipSolution, MipStatus, SolverLimits};
pub use model::{Constraint, ConstraintSense, LinExpr, LpProblem, VarId, VarType};
pub use revised::{
    solve_lp, solve_lp_with_bounds, solve_lp_with_bounds_deadline, Basis, LpSolution, LpStatus,
    RevisedSimplex, VarStatus,
};
