//! # lp-solver — a small LP/MIP solver (the COPT substitute substrate)
//!
//! The paper solves its scheduling ILPs with the commercial COPT solver, which is
//! not available here. This crate provides a self-contained substitute:
//!
//! * [`LpProblem`] — a mixed-integer linear-programming model builder (variables
//!   with bounds and types, linear constraints, minimisation objective);
//! * [`simplex`] — a dense two-phase primal simplex solver for the LP relaxation;
//! * [`branch_bound`] — a depth-first branch-and-bound MIP solver with incumbent
//!   warm starts, node limits and wall-clock time limits.
//!
//! It is designed for the moderate problem sizes the ILP-based schedulers generate
//! (hundreds of variables and constraints), favouring clarity and robustness over
//! raw speed; the experiment harness uses it for the acyclic-bipartitioning ILPs and
//! for exact solutions of small MBSP instances, exactly the roles COPT plays in the
//! paper.

pub mod branch_bound;
pub mod model;
pub mod simplex;

pub use branch_bound::{BranchBoundSolver, MipSolution, MipStatus, SolverLimits};
pub use model::{Constraint, ConstraintSense, LinExpr, LpProblem, VarId, VarType};
pub use simplex::{solve_lp, LpSolution, LpStatus};
