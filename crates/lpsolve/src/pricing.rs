//! Entering-variable selection (pricing) for the revised simplex.
//!
//! The solver prices with **partial pricing**: candidate columns are scanned in
//! rotating blocks and the best (most-violating, Dantzig-style) eligible column
//! *within the first non-empty block* enters. This avoids computing every
//! reduced cost on every iteration — on the MBSP ILP relaxations most columns
//! stay uninteresting for long stretches — while the rotation guarantees every
//! column is inspected within one sweep, so optimality proofs remain exact.
//! When the solver detects stalling it switches to **Bland's rule**
//! ([`select_bland`]), which picks the lowest-index eligible column and
//! guarantees termination under degeneracy.

/// Rotating partial-pricing state.
#[derive(Debug, Clone)]
pub struct Pricing {
    /// Column at which the next scan starts.
    start: usize,
    /// Block size per scan burst.
    block: usize,
}

impl Pricing {
    /// Creates pricing state for a problem with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        Pricing {
            start: 0,
            block: (ncols / 8).clamp(32, 1024),
        }
    }

    /// Selects an entering column. `eligible(j)` returns `Some(violation)` (a
    /// positive score, typically `|reduced cost|`) when column `j` may enter.
    /// Scans blocks starting from the rotation point; the first block that
    /// contains any eligible column yields its best-scoring member. Returns
    /// `None` only after a full wrap-around found nothing (proving optimality
    /// of the current basis for the caller's cost vector).
    pub fn select<F: FnMut(usize) -> Option<f64>>(
        &mut self,
        ncols: usize,
        mut eligible: F,
    ) -> Option<usize> {
        if ncols == 0 {
            return None;
        }
        let mut scanned = 0;
        let mut pos = self.start % ncols;
        while scanned < ncols {
            let mut best: Option<(usize, f64)> = None;
            let burst = self.block.min(ncols - scanned);
            for _ in 0..burst {
                if let Some(v) = eligible(pos) {
                    if best.map_or(true, |(_, bv)| v > bv) {
                        best = Some((pos, v));
                    }
                }
                pos = (pos + 1) % ncols;
                scanned += 1;
            }
            if let Some((j, _)) = best {
                self.start = pos;
                return Some(j);
            }
        }
        self.start = pos;
        None
    }
}

/// Bland's rule: the lowest-index eligible column (anti-cycling fallback).
pub fn select_bland<F: FnMut(usize) -> Option<f64>>(
    ncols: usize,
    mut eligible: F,
) -> Option<usize> {
    (0..ncols).find(|&j| eligible(j).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_best_within_first_eligible_block() {
        let mut p = Pricing { start: 0, block: 4 };
        // Columns 1 and 3 eligible in the first block of 4; 3 scores higher.
        let scores = [None, Some(1.0), None, Some(2.0), Some(9.0)];
        let got = p.select(scores.len(), |j| scores[j]);
        assert_eq!(got, Some(3));
        // Rotation: the next scan starts after the first block, finds column 4.
        let got = p.select(scores.len(), |j| scores[j]);
        assert_eq!(got, Some(4));
    }

    #[test]
    fn full_wraparound_proves_optimality() {
        let mut p = Pricing { start: 3, block: 2 };
        let mut calls = 0;
        let got = p.select(7, |_| {
            calls += 1;
            None
        });
        assert_eq!(got, None);
        assert_eq!(
            calls, 7,
            "every column must be inspected before reporting optimal"
        );
    }

    #[test]
    fn wraps_past_the_end_of_the_column_range() {
        let mut p = Pricing { start: 5, block: 4 };
        // Only column 1 is eligible; the scan starts at 5 and must wrap.
        let got = p.select(6, |j| (j == 1).then_some(1.0));
        assert_eq!(got, Some(1));
    }

    #[test]
    fn bland_picks_lowest_index() {
        let got = select_bland(5, |j| (j >= 2).then_some((10 - j) as f64));
        assert_eq!(got, Some(2));
        assert_eq!(select_bland(5, |_| None), None);
    }

    #[test]
    fn empty_problem_has_no_entering_column() {
        let mut p = Pricing::new(0);
        assert_eq!(p.select(0, |_| Some(1.0)), None);
    }
}
