//! Bounded-variable sparse revised simplex (primal and dual).
//!
//! This is the workhorse LP solver of the crate. It differs from the retained
//! dense oracle ([`crate::dense`]) in three ways that matter for the MBSP ILP
//! relaxations:
//!
//! * the constraint matrix is stored once in **compressed sparse column** form
//!   ([`crate::sparse::SparseForm`]) and never densified;
//! * variable bounds are handled **natively in the ratio test** (general
//!   bounded-variable simplex with bound flips), so a binary ILP with `n`
//!   variables does *not* grow `n` extra upper-bound rows;
//! * the basis is factorized as **LU with product-form (eta) updates** and
//!   periodic refactorization ([`crate::basis::Factorization`]), so one pivot
//!   costs two sparse triangular solves instead of a dense tableau sweep.
//!
//! Pricing is partial (rotating blocks, Dantzig within a block) with a Bland's
//! rule fallback under stalling, which guarantees termination on degenerate
//! problems ([`crate::pricing`]).
//!
//! **Warm starts.** [`RevisedSimplex::solve_with_basis`] re-solves after bound
//! changes starting from a caller-supplied basis: if the basis is still primal
//! feasible the primal finishes the job; if it is only dual feasible (the
//! typical branch-and-bound child node: the branching variable was basic and
//! fractional) a **bounded dual simplex** drives the handful of violated
//! basics back into their boxes; otherwise the solver falls back to a cold
//! Phase-1/Phase-2 start. [`RevisedSimplex::solve_from_point`] crashes a basis
//! from a known (e.g. two-stage baseline) assignment, which makes Phase 1
//! trivial when the point is feasible.

use crate::basis::Factorization;
use crate::model::LpProblem;
use crate::pricing::{select_bland, Pricing};
use crate::sparse::SparseForm;
use std::time::Instant;

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit (or the caller's deadline) was reached first.
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Values of the original problem variables (meaningful only when `Optimal`).
    pub values: Vec<f64>,
}

impl LpSolution {
    fn infeasible() -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            values: vec![],
        }
    }

    fn unbounded() -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NEG_INFINITY,
            values: vec![],
        }
    }

    fn limit() -> Self {
        LpSolution {
            status: LpStatus::IterationLimit,
            objective: f64::INFINITY,
            values: vec![],
        }
    }
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis (value determined by the basic solution).
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable, resting at zero.
    Free,
}

/// A snapshot of a simplex basis: which column is basic in each row position
/// plus the resting status of every column. Cheap to clone; branch and bound
/// hands these from parent to child nodes.
#[derive(Debug, Clone)]
pub struct Basis {
    /// `basic[i]` = column basic at row position `i`.
    pub basic: Vec<usize>,
    /// Status per column (length = structural + slack + artificial columns).
    pub status: Vec<VarStatus>,
}

/// Reduced-cost threshold for pricing eligibility.
const DUAL_TOL: f64 = 1e-7;
/// Bound-violation threshold for primal feasibility.
const PRIMAL_TOL: f64 = 1e-7;
/// Entries smaller than this never pivot in the ratio test.
const RATIO_TOL: f64 = 1e-9;
/// Tie window of the ratio test.
const RATIO_EPS: f64 = 1e-9;
/// A step this small counts as a degenerate pivot.
const DEGENERATE_STEP: f64 = 1e-10;

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
    NumericalTrouble,
}

enum DualOutcome {
    /// Primal feasibility restored (dual feasibility was maintained throughout).
    Feasible,
    /// The LP is infeasible (a row proved no feasible point exists).
    Infeasible,
    /// Budget exhausted or numerical trouble; caller should re-solve cold.
    GiveUp,
    /// The caller's deadline passed.
    Deadline,
}

/// The revised simplex solver. Owns the standard form (so branch and bound can
/// tighten bounds in place between solves) and all solver state.
pub struct RevisedSimplex {
    form: SparseForm,
    /// Status per column.
    status: Vec<VarStatus>,
    /// Basic column per row position.
    basic: Vec<usize>,
    /// Current value per column.
    x: Vec<f64>,
    factor: Factorization,
    pricing: Pricing,
    /// Phase-1 cost vector (`±1` on the active artificials, `0` elsewhere).
    p1cost: Vec<f64>,
    /// Scratch vectors of length `nrows`.
    ybuf: Vec<f64>,
    wbuf: Vec<f64>,
    rbuf: Vec<f64>,
    deadline: Option<Instant>,
}

impl RevisedSimplex {
    /// Creates a solver for `problem` using the problem's own variable bounds.
    pub fn new(problem: &LpProblem) -> Self {
        let lower: Vec<f64> = problem.variables.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = problem.variables.iter().map(|v| v.upper).collect();
        RevisedSimplex::with_bounds(problem, &lower, &upper)
    }

    /// Creates a solver for `problem` with overridden structural bounds.
    pub fn with_bounds(problem: &LpProblem, lower: &[f64], upper: &[f64]) -> Self {
        let form = SparseForm::build(problem, lower, upper);
        let ncols = form.ncols();
        let m = form.nrows;
        RevisedSimplex {
            status: vec![VarStatus::AtLower; ncols],
            basic: Vec::with_capacity(m),
            x: vec![0.0; ncols],
            factor: Factorization::new(),
            pricing: Pricing::new(ncols),
            p1cost: vec![0.0; ncols],
            ybuf: vec![0.0; m],
            wbuf: vec![0.0; m],
            rbuf: vec![0.0; m],
            form,
            deadline: None,
        }
    }

    /// Number of structural columns.
    pub fn num_structural(&self) -> usize {
        self.form.nstruct
    }

    /// Overrides the structural bounds (branch-and-bound node setup).
    pub fn set_structural_bounds(&mut self, lower: &[f64], upper: &[f64]) {
        self.form.set_structural_bounds(lower, upper);
    }

    /// Returns a cheap snapshot of the current basis (valid after any solve).
    pub fn basis_snapshot(&self) -> Basis {
        Basis {
            basic: self.basic.clone(),
            status: self.status.clone(),
        }
    }

    /// Solves from scratch (crash basis + Phase 1 + Phase 2).
    pub fn solve(&mut self, deadline: Option<Instant>) -> LpSolution {
        self.deadline = deadline;
        if self.bounds_crossed() {
            return LpSolution::infeasible();
        }
        self.solve_cold(None)
    }

    /// Solves from scratch, crashing the initial basis towards `point` (one
    /// value per structural variable): every nonbasic structural rests at the
    /// bound nearest its point value, so a feasible `point` whose entries sit
    /// on their bounds (e.g. an integral incumbent) skips Phase 1 entirely.
    pub fn solve_from_point(&mut self, point: &[f64], deadline: Option<Instant>) -> LpSolution {
        self.deadline = deadline;
        if self.bounds_crossed() {
            return LpSolution::infeasible();
        }
        if point.len() == self.form.nstruct {
            self.solve_cold(Some(point))
        } else {
            self.solve_cold(None)
        }
    }

    /// Warm-started re-solve: install `basis`, then pick the cheapest correct
    /// path (already optimal / primal / dual simplex) and fall back to a cold
    /// solve when the basis is unusable. This is the branch-and-bound fast
    /// path: after a single bound change the parent's optimal basis stays dual
    /// feasible and the dual simplex typically needs only a few pivots.
    pub fn solve_with_basis(&mut self, basis: &Basis, deadline: Option<Instant>) -> LpSolution {
        self.deadline = deadline;
        if self.bounds_crossed() {
            return LpSolution::infeasible();
        }
        if self.install_basis(basis) {
            if self.primal_infeasibility() <= PRIMAL_TOL {
                match self.primal(false) {
                    PhaseOutcome::Optimal => return self.extract(),
                    PhaseOutcome::Unbounded => return LpSolution::unbounded(),
                    PhaseOutcome::IterationLimit => return LpSolution::limit(),
                    PhaseOutcome::NumericalTrouble => {}
                }
            } else if self.dual_infeasibility() <= DUAL_TOL {
                match self.dual() {
                    DualOutcome::Feasible => match self.primal(false) {
                        PhaseOutcome::Optimal => return self.extract(),
                        PhaseOutcome::Unbounded => return LpSolution::unbounded(),
                        PhaseOutcome::IterationLimit => return LpSolution::limit(),
                        PhaseOutcome::NumericalTrouble => {}
                    },
                    DualOutcome::Infeasible => return LpSolution::infeasible(),
                    DualOutcome::Deadline => return LpSolution::limit(),
                    DualOutcome::GiveUp => {}
                }
            }
        }
        self.solve_cold(None)
    }

    // ------------------------------------------------------------------
    // Cold path: crash + Phase 1 + Phase 2.
    // ------------------------------------------------------------------

    fn solve_cold(&mut self, point: Option<&[f64]>) -> LpSolution {
        let needs_phase1 = self.crash(point);
        if !self.refactor_and_sync() {
            return LpSolution::limit();
        }
        if needs_phase1 {
            match self.primal(true) {
                PhaseOutcome::Optimal => {}
                // Phase 1 is bounded below by zero; anything else is numerics.
                _ => return LpSolution::limit(),
            }
            let infeas: f64 = (0..self.form.nrows)
                .map(|i| self.x[self.form.artificial(i)].abs())
                .sum();
            if infeas > 1e-6 {
                return LpSolution::infeasible();
            }
            // Pin the artificials back to zero and resynchronize.
            for i in 0..self.form.nrows {
                let a = self.form.artificial(i);
                self.form.lower[a] = 0.0;
                self.form.upper[a] = 0.0;
                self.p1cost[a] = 0.0;
                if self.status[a] != VarStatus::Basic {
                    self.status[a] = VarStatus::AtLower;
                    self.x[a] = 0.0;
                }
            }
            self.sync_basic_values();
        }
        match self.primal(false) {
            PhaseOutcome::Optimal => self.extract(),
            PhaseOutcome::Unbounded => LpSolution::unbounded(),
            PhaseOutcome::IterationLimit | PhaseOutcome::NumericalTrouble => LpSolution::limit(),
        }
    }

    /// Sets up the crash basis: structurals nonbasic at a finite bound (nearest
    /// `point` when given), every row's slack basic when its residual fits the
    /// slack bounds, otherwise the row's artificial basic capturing the
    /// residual with a `±1` Phase-1 cost. Returns true if any artificial is
    /// active (Phase 1 required).
    fn crash(&mut self, point: Option<&[f64]>) -> bool {
        let form = &mut self.form;
        let n = form.nstruct;
        let m = form.nrows;
        for j in 0..n {
            let (l, u) = (form.lower[j], form.upper[j]);
            let target = point.map_or(0.0, |p| p[j]);
            let (st, v) = if l.is_finite() && u.is_finite() {
                if (target - l).abs() <= (u - target).abs() {
                    (VarStatus::AtLower, l)
                } else {
                    (VarStatus::AtUpper, u)
                }
            } else if l.is_finite() {
                (VarStatus::AtLower, l)
            } else if u.is_finite() {
                (VarStatus::AtUpper, u)
            } else {
                (VarStatus::Free, 0.0)
            };
            self.status[j] = st;
            self.x[j] = v;
        }
        // Residual of each row under the nonbasic structurals.
        self.ybuf.copy_from_slice(&form.rhs);
        for j in 0..n {
            if self.x[j] != 0.0 {
                form.cols.scatter_col(j, -self.x[j], &mut self.ybuf);
            }
        }
        self.basic.clear();
        let mut needs_phase1 = false;
        for i in 0..m {
            let s = self.ybuf[i];
            let sl = form.slack(i);
            let a = form.artificial(i);
            // Reset the artificial to its pinned state first.
            form.lower[a] = 0.0;
            form.upper[a] = 0.0;
            self.p1cost[a] = 0.0;
            self.status[a] = VarStatus::AtLower;
            self.x[a] = 0.0;
            if s >= form.lower[sl] - PRIMAL_TOL && s <= form.upper[sl] + PRIMAL_TOL {
                self.status[sl] = VarStatus::Basic;
                self.x[sl] = s;
                self.basic.push(sl);
            } else {
                // Slack nonbasic at its nearest bound; artificial takes the rest.
                let sb = if s < form.lower[sl] {
                    form.lower[sl]
                } else {
                    form.upper[sl]
                };
                self.status[sl] = if sb == form.lower[sl] {
                    VarStatus::AtLower
                } else {
                    VarStatus::AtUpper
                };
                self.x[sl] = sb;
                let resid = s - sb;
                if resid >= 0.0 {
                    form.lower[a] = 0.0;
                    form.upper[a] = f64::INFINITY;
                    self.p1cost[a] = 1.0;
                } else {
                    form.lower[a] = f64::NEG_INFINITY;
                    form.upper[a] = 0.0;
                    self.p1cost[a] = -1.0;
                }
                self.status[a] = VarStatus::Basic;
                self.x[a] = resid;
                self.basic.push(a);
                needs_phase1 = true;
            }
        }
        needs_phase1
    }

    // ------------------------------------------------------------------
    // Warm path helpers.
    // ------------------------------------------------------------------

    /// Installs a basis snapshot: validates shape and statuses, pins the
    /// artificials, refactorizes and recomputes all values. Returns false if
    /// the snapshot cannot be used (wrong shape, status at an infinite bound,
    /// singular basis).
    fn install_basis(&mut self, basis: &Basis) -> bool {
        let m = self.form.nrows;
        let ncols = self.form.ncols();
        if basis.basic.len() != m || basis.status.len() != ncols {
            return false;
        }
        if basis.basic.iter().any(|&j| j >= ncols) {
            return false;
        }
        self.basic.clear();
        self.basic.extend_from_slice(&basis.basic);
        self.status.copy_from_slice(&basis.status);
        for i in 0..m {
            let a = self.form.artificial(i);
            self.form.lower[a] = 0.0;
            self.form.upper[a] = 0.0;
            self.p1cost[a] = 0.0;
        }
        // Statuses must be internally consistent and resting spots finite.
        let mut basic_count = 0;
        for j in 0..ncols {
            match self.status[j] {
                VarStatus::Basic => basic_count += 1,
                VarStatus::AtLower => {
                    if !self.form.lower[j].is_finite() {
                        return false;
                    }
                }
                VarStatus::AtUpper => {
                    if !self.form.upper[j].is_finite() {
                        return false;
                    }
                }
                VarStatus::Free => {}
            }
        }
        if basic_count != m
            || self
                .basic
                .iter()
                .any(|&j| self.status[j] != VarStatus::Basic)
        {
            return false;
        }
        if !self.factor.refactorize(&self.form.cols, &self.basic) {
            return false;
        }
        for j in 0..ncols {
            match self.status[j] {
                VarStatus::Basic => {}
                VarStatus::AtLower => self.x[j] = self.form.lower[j],
                VarStatus::AtUpper => self.x[j] = self.form.upper[j],
                VarStatus::Free => self.x[j] = 0.0,
            }
        }
        self.sync_basic_values();
        true
    }

    /// Largest bound violation over the basic variables.
    fn primal_infeasibility(&self) -> f64 {
        self.basic
            .iter()
            .map(|&j| {
                (self.form.lower[j] - self.x[j])
                    .max(self.x[j] - self.form.upper[j])
                    .max(0.0)
            })
            .fold(0.0, f64::max)
    }

    /// Largest reduced-cost sign violation over the nonbasic variables.
    fn dual_infeasibility(&mut self) -> f64 {
        let m = self.form.nrows;
        for i in 0..m {
            self.ybuf[i] = self.form.cost[self.basic[i]];
        }
        self.factor.btran(&mut self.ybuf);
        let mut worst = 0.0f64;
        for j in 0..self.form.ncols() {
            if self.status[j] == VarStatus::Basic || self.form.lower[j] >= self.form.upper[j] {
                continue;
            }
            let d = self.form.cost[j] - self.form.cols.dot_col(j, &self.ybuf);
            let v = match self.status[j] {
                VarStatus::AtLower => -d,
                VarStatus::AtUpper => d,
                VarStatus::Free => d.abs(),
                VarStatus::Basic => 0.0,
            };
            worst = worst.max(v);
        }
        worst
    }

    // ------------------------------------------------------------------
    // Primal simplex.
    // ------------------------------------------------------------------

    fn primal(&mut self, phase1: bool) -> PhaseOutcome {
        let m = self.form.nrows;
        let ncols = self.form.ncols();
        let max_iter = 200 * (ncols + m + 10);
        let bland_threshold = max_iter / 2;
        let mut degenerate_run = 0usize;
        for iter in 0..max_iter {
            if iter & 15 == 0 {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return PhaseOutcome::IterationLimit;
                    }
                }
            }
            // Duals for the current cost vector.
            for i in 0..m {
                let bj = self.basic[i];
                self.ybuf[i] = if phase1 {
                    self.p1cost[bj]
                } else {
                    self.form.cost[bj]
                };
            }
            self.factor.btran(&mut self.ybuf);
            // Pricing.
            let use_bland = iter > bland_threshold || degenerate_run > 300;
            let q = {
                let form = &self.form;
                let status = &self.status;
                let y = &self.ybuf;
                let p1 = &self.p1cost;
                let eligible = |j: usize| -> Option<f64> {
                    if status[j] == VarStatus::Basic || form.lower[j] >= form.upper[j] {
                        return None;
                    }
                    let c = if phase1 { p1[j] } else { form.cost[j] };
                    let d = c - form.cols.dot_col(j, y);
                    match status[j] {
                        VarStatus::AtLower => (d < -DUAL_TOL).then_some(-d),
                        VarStatus::AtUpper => (d > DUAL_TOL).then_some(d),
                        VarStatus::Free => (d.abs() > DUAL_TOL).then_some(d.abs()),
                        VarStatus::Basic => None,
                    }
                };
                if use_bland {
                    select_bland(ncols, eligible)
                } else {
                    let mut pricing = self.pricing.clone();
                    let r = pricing.select(ncols, eligible);
                    self.pricing = pricing;
                    r
                }
            };
            let Some(q) = q else {
                return PhaseOutcome::Optimal;
            };
            let cq = if phase1 {
                self.p1cost[q]
            } else {
                self.form.cost[q]
            };
            let dq = cq - self.form.cols.dot_col(q, &self.ybuf);
            let dir: f64 = match self.status[q] {
                VarStatus::AtLower => 1.0,
                VarStatus::AtUpper => -1.0,
                VarStatus::Free => {
                    if dq < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VarStatus::Basic => unreachable!("pricing never selects a basic column"),
            };
            // Forward-transform the entering column.
            self.wbuf.iter_mut().for_each(|v| *v = 0.0);
            self.form.cols.scatter_col(q, 1.0, &mut self.wbuf);
            self.factor.ftran(&mut self.wbuf);
            // Bounded ratio test.
            let range_q = self.form.upper[q] - self.form.lower[q];
            let mut t_best = f64::INFINITY;
            let mut leave: Option<(usize, bool)> = None;
            let mut leave_w = 0.0f64;
            for i in 0..m {
                let wi = self.wbuf[i];
                if wi.abs() <= RATIO_TOL {
                    continue;
                }
                let bi = self.basic[i];
                let rate = -dir * wi;
                let (limit, to_upper) = if rate < 0.0 {
                    let lb = self.form.lower[bi];
                    if !lb.is_finite() {
                        continue;
                    }
                    (((self.x[bi] - lb) / -rate).max(0.0), false)
                } else {
                    let ub = self.form.upper[bi];
                    if !ub.is_finite() {
                        continue;
                    }
                    (((ub - self.x[bi]) / rate).max(0.0), true)
                };
                let better = limit < t_best - RATIO_EPS
                    || (limit < t_best + RATIO_EPS && wi.abs() > leave_w.abs());
                if better {
                    t_best = limit;
                    leave = Some((i, to_upper));
                    leave_w = wi;
                }
            }
            if range_q.is_finite() && range_q <= t_best {
                // Bound flip: the entering variable crosses to its other bound.
                let t = range_q;
                for i in 0..m {
                    let wi = self.wbuf[i];
                    if wi != 0.0 {
                        self.x[self.basic[i]] -= dir * t * wi;
                    }
                }
                self.status[q] = match self.status[q] {
                    VarStatus::AtLower => {
                        self.x[q] = self.form.upper[q];
                        VarStatus::AtUpper
                    }
                    _ => {
                        self.x[q] = self.form.lower[q];
                        VarStatus::AtLower
                    }
                };
                degenerate_run = if t <= DEGENERATE_STEP {
                    degenerate_run + 1
                } else {
                    0
                };
                continue;
            }
            let Some((r, to_upper)) = leave else {
                return PhaseOutcome::Unbounded;
            };
            let t = t_best;
            for i in 0..m {
                let wi = self.wbuf[i];
                if wi != 0.0 {
                    self.x[self.basic[i]] -= dir * t * wi;
                }
            }
            self.x[q] += dir * t;
            let bi = self.basic[r];
            self.x[bi] = if to_upper {
                self.form.upper[bi]
            } else {
                self.form.lower[bi]
            };
            self.status[bi] = if to_upper {
                VarStatus::AtUpper
            } else {
                VarStatus::AtLower
            };
            self.status[q] = VarStatus::Basic;
            self.basic[r] = q;
            degenerate_run = if t <= DEGENERATE_STEP {
                degenerate_run + 1
            } else {
                0
            };
            if (!self.factor.update(&self.wbuf, r) || self.factor.should_refactorize())
                && !self.refactor_and_sync()
            {
                return PhaseOutcome::NumericalTrouble;
            }
        }
        PhaseOutcome::IterationLimit
    }

    // ------------------------------------------------------------------
    // Dual simplex (warm re-solve after bound changes).
    // ------------------------------------------------------------------

    fn dual(&mut self) -> DualOutcome {
        let m = self.form.nrows;
        let ncols = self.form.ncols();
        let max_iter = 200 * (ncols + m + 10);
        for iter in 0..max_iter {
            if iter & 15 == 0 {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return DualOutcome::Deadline;
                    }
                }
            }
            // Leaving row: the basic variable with the largest bound violation.
            let mut r = usize::MAX;
            let mut worst = PRIMAL_TOL;
            for (i, &bj) in self.basic.iter().enumerate() {
                let v = (self.form.lower[bj] - self.x[bj]).max(self.x[bj] - self.form.upper[bj]);
                if v > worst {
                    worst = v;
                    r = i;
                }
            }
            if r == usize::MAX {
                return DualOutcome::Feasible;
            }
            let bi = self.basic[r];
            let below = self.x[bi] < self.form.lower[bi];
            let target = if below {
                self.form.lower[bi]
            } else {
                self.form.upper[bi]
            };
            // Row r of B⁻¹ (for the alphas) and the duals (for the ratios).
            self.rbuf.iter_mut().for_each(|v| *v = 0.0);
            self.rbuf[r] = 1.0;
            self.factor.btran(&mut self.rbuf);
            for i in 0..m {
                self.ybuf[i] = self.form.cost[self.basic[i]];
            }
            self.factor.btran(&mut self.ybuf);
            // Dual ratio test over the nonbasic columns.
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for j in 0..ncols {
                if self.status[j] == VarStatus::Basic || self.form.lower[j] >= self.form.upper[j] {
                    continue;
                }
                let mut alpha = 0.0;
                let mut dot_y = 0.0;
                for (row, v) in self.form.cols.col(j) {
                    alpha += v * self.rbuf[row];
                    dot_y += v * self.ybuf[row];
                }
                if alpha.abs() <= RATIO_TOL {
                    continue;
                }
                // The entering variable must be able to move the violated basic
                // variable towards its bound without leaving its own bound.
                let ok = match self.status[j] {
                    VarStatus::AtLower => {
                        if below {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    VarStatus::AtUpper => {
                        if below {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    VarStatus::Free => true,
                    VarStatus::Basic => false,
                };
                if !ok {
                    continue;
                }
                let d = self.form.cost[j] - dot_y;
                let num = match self.status[j] {
                    VarStatus::AtLower => d.max(0.0),
                    VarStatus::AtUpper => (-d).max(0.0),
                    _ => d.abs(),
                };
                let ratio = num / alpha.abs();
                if ratio < best_ratio - RATIO_EPS
                    || (ratio < best_ratio + RATIO_EPS && alpha.abs() > best_alpha.abs())
                {
                    best_ratio = ratio;
                    best_alpha = alpha;
                    entering = Some(j);
                }
            }
            let Some(q) = entering else {
                // Every nonbasic column already pushes the violated basic as far
                // as its bounds allow: the LP is infeasible. But the alphas came
                // through the eta file — before pruning a branch-and-bound
                // subtree on this certificate, confirm it against a fresh
                // factorization (stale updates could hide eligible columns).
                if self.factor.updates() > 0 {
                    if !self.refactor_and_sync() {
                        return DualOutcome::GiveUp;
                    }
                    continue;
                }
                return DualOutcome::Infeasible;
            };
            // Forward-transform the entering column and pivot.
            self.wbuf.iter_mut().for_each(|v| *v = 0.0);
            self.form.cols.scatter_col(q, 1.0, &mut self.wbuf);
            self.factor.ftran(&mut self.wbuf);
            let alpha_q = self.wbuf[r];
            if alpha_q.abs() <= RATIO_TOL {
                // The eta-file estimate disagreed with the fresh column: the
                // factorization has drifted. Refactorize and retry once.
                if !self.refactor_and_sync() {
                    return DualOutcome::GiveUp;
                }
                continue;
            }
            let dxq = (self.x[bi] - target) / alpha_q;
            for i in 0..m {
                let wi = self.wbuf[i];
                if wi != 0.0 {
                    self.x[self.basic[i]] -= wi * dxq;
                }
            }
            self.x[bi] = target;
            self.x[q] += dxq;
            self.status[bi] = if below {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.status[q] = VarStatus::Basic;
            self.basic[r] = q;
            if (!self.factor.update(&self.wbuf, r) || self.factor.should_refactorize())
                && !self.refactor_and_sync()
            {
                return DualOutcome::GiveUp;
            }
        }
        DualOutcome::GiveUp
    }

    // ------------------------------------------------------------------
    // Shared machinery.
    // ------------------------------------------------------------------

    fn bounds_crossed(&self) -> bool {
        (0..self.form.ncols()).any(|j| self.form.lower[j] > self.form.upper[j] + PRIMAL_TOL)
    }

    fn refactor_and_sync(&mut self) -> bool {
        if !self.factor.refactorize(&self.form.cols, &self.basic) {
            return false;
        }
        self.sync_basic_values();
        true
    }

    /// Recomputes the basic values exactly from the factorization:
    /// `x_B = B⁻¹ (b − N x_N)`.
    fn sync_basic_values(&mut self) {
        self.ybuf.copy_from_slice(&self.form.rhs);
        for j in 0..self.form.ncols() {
            if self.status[j] != VarStatus::Basic && self.x[j] != 0.0 {
                self.form.cols.scatter_col(j, -self.x[j], &mut self.ybuf);
            }
        }
        self.factor.ftran(&mut self.ybuf);
        for (i, &bj) in self.basic.iter().enumerate() {
            self.x[bj] = self.ybuf[i];
        }
    }

    fn extract(&self) -> LpSolution {
        let n = self.form.nstruct;
        let mut values = Vec::with_capacity(n);
        for j in 0..n {
            // Snap tiny drift back onto the box. Not `f64::clamp`: the entry
            // checks tolerate bounds that cross by up to ~1e-9, where `clamp`
            // would panic; `max().min()` resolves that case to the upper bound.
            values.push(self.x[j].max(self.form.lower[j]).min(self.form.upper[j]));
        }
        let objective = values
            .iter()
            .enumerate()
            .map(|(j, &v)| self.form.cost[j] * v)
            .sum();
        LpSolution {
            status: LpStatus::Optimal,
            objective,
            values,
        }
    }
}

/// Solves the LP relaxation of `problem` (integrality is ignored).
pub fn solve_lp(problem: &LpProblem) -> LpSolution {
    let lower: Vec<f64> = problem.variables.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = problem.variables.iter().map(|v| v.upper).collect();
    solve_lp_with_bounds(problem, &lower, &upper)
}

/// Solves the LP relaxation of `problem` with overridden variable bounds (used
/// by branch and bound). `lower`/`upper` must have one entry per variable.
pub fn solve_lp_with_bounds(problem: &LpProblem, lower: &[f64], upper: &[f64]) -> LpSolution {
    solve_lp_with_bounds_deadline(problem, lower, upper, None)
}

/// Like [`solve_lp_with_bounds`], but aborts with [`LpStatus::IterationLimit`]
/// once `deadline` passes (checked inside the pivot loops, so a single large
/// relaxation cannot blow a caller's wall-clock budget).
pub fn solve_lp_with_bounds_deadline(
    problem: &LpProblem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpSolution {
    let n = problem.num_variables();
    assert_eq!(lower.len(), n);
    assert_eq!(upper.len(), n);
    if lower.iter().zip(upper).any(|(&l, &u)| l > u + 1e-9) {
        return LpSolution::infeasible();
    }
    RevisedSimplex::with_bounds(problem, lower, upper).solve(deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinExpr, LpProblem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_variable_lp() {
        // max x + y  s.t. x + 2y <= 4, 3x + y <= 6 -> min -(x+y); optimum 14/5.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, -1.0);
        p.add_constraint(
            "c1",
            LinExpr::term(x, 1.0).plus(y, 2.0),
            ConstraintSense::LessEqual,
            4.0,
        );
        p.add_constraint(
            "c2",
            LinExpr::term(x, 3.0).plus(y, 1.0),
            ConstraintSense::LessEqual,
            6.0,
        );
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -14.0 / 5.0);
        assert_close(sol.values[x.index()], 8.0 / 5.0);
        assert_close(sol.values[y.index()], 6.0 / 5.0);
    }

    #[test]
    fn equality_and_geq_constraints() {
        // min 2x + 3y  s.t. x + y = 10, x >= 4, y >= 2 -> x = 8, y = 2.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint(
            "sum",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::Equal,
            10.0,
        );
        p.add_constraint(
            "xmin",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            4.0,
        );
        p.add_constraint(
            "ymin",
            LinExpr::term(y, 1.0),
            ConstraintSense::GreaterEqual,
            2.0,
        );
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], 8.0);
        assert_close(sol.values[y.index()], 2.0);
        assert_close(sol.objective, 22.0);
    }

    #[test]
    fn variable_bounds_are_respected_without_extra_rows() {
        // min -x with 1 <= x <= 5 and *no constraints at all*.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 1.0, 5.0, -1.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], 5.0);
        assert_close(sol.objective, -5.0);
        let mut p2 = LpProblem::new();
        let x2 = p2.add_continuous("x", 1.0, 5.0, 1.0);
        let sol2 = solve_lp(&p2);
        assert_close(sol2.values[x2.index()], 1.0);
    }

    #[test]
    fn infeasible_problem_is_detected() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 10.0, 1.0);
        p.add_constraint(
            "lo",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            5.0,
        );
        p.add_constraint("hi", LinExpr::term(x, 1.0), ConstraintSense::LessEqual, 3.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        p.add_constraint("c", LinExpr::term(x, -1.0), ConstraintSense::LessEqual, 1.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_are_handled() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", -5.0, 5.0, 1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            -3.0,
        );
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], -3.0);
    }

    #[test]
    fn free_variables_are_supported() {
        // min x with x free and x >= -7: optimum -7.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            -7.0,
        );
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], -7.0);
    }

    #[test]
    fn solve_with_overridden_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 10.0, -1.0);
        let sol = solve_lp_with_bounds(&p, &[0.0], &[4.0]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], 4.0);
        let bad = solve_lp_with_bounds(&p, &[5.0], &[4.0]);
        assert_eq!(bad.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, -1.0);
        for k in 0..5 {
            p.add_constraint(
                format!("c{k}"),
                LinExpr::term(x, 1.0).plus(y, 1.0),
                ConstraintSense::LessEqual,
                2.0,
            );
        }
        p.add_constraint(
            "cap",
            LinExpr::term(x, 1.0),
            ConstraintSense::LessEqual,
            2.0,
        );
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -2.0);
    }

    #[test]
    fn lp_relaxation_of_binary_problem() {
        let mut p = LpProblem::new();
        let x = p.add_binary("x", -3.0);
        let y = p.add_binary("y", -2.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 2.0).plus(y, 2.0),
            ConstraintSense::LessEqual,
            3.0,
        );
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -4.0);
    }

    #[test]
    fn bounds_crossing_within_tolerance_does_not_panic() {
        // The entry checks tolerate a crossing of up to ~1e-9; extraction must
        // not panic on it (f64::clamp would).
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 5.0, 6.0, 1.0);
        let sol = solve_lp_with_bounds(&p, &[5.0 + 1e-10], &[5.0]);
        assert!(matches!(
            sol.status,
            LpStatus::Optimal | LpStatus::Infeasible
        ));
        if sol.status == LpStatus::Optimal {
            assert!((sol.values[x.index()] - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_basis_resolves_after_a_bound_change() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6; then branch x <= 1.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, -1.0);
        p.add_constraint(
            "c1",
            LinExpr::term(x, 1.0).plus(y, 2.0),
            ConstraintSense::LessEqual,
            4.0,
        );
        p.add_constraint(
            "c2",
            LinExpr::term(x, 3.0).plus(y, 1.0),
            ConstraintSense::LessEqual,
            6.0,
        );
        let mut solver = RevisedSimplex::new(&p);
        let root = solver.solve(None);
        assert_eq!(root.status, LpStatus::Optimal);
        assert_close(root.objective, -14.0 / 5.0);
        let basis = solver.basis_snapshot();
        solver.set_structural_bounds(&[0.0, 0.0], &[1.0, f64::INFINITY]);
        let child = solver.solve_with_basis(&basis, None);
        assert_eq!(child.status, LpStatus::Optimal);
        // With x <= 1: y <= 1.5 from c1, objective -(1 + 1.5) = -2.5.
        assert_close(child.objective, -2.5);
        assert_close(child.values[x.index()], 1.0);
        assert_close(child.values[y.index()], 1.5);
    }

    #[test]
    fn warm_basis_detects_child_infeasibility() {
        // x + y >= 4 with x, y in [0, 1] after branching is infeasible.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 3.0, 1.0);
        let y = p.add_continuous("y", 0.0, 3.0, 1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::GreaterEqual,
            4.0,
        );
        let mut solver = RevisedSimplex::new(&p);
        let root = solver.solve(None);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = solver.basis_snapshot();
        solver.set_structural_bounds(&[0.0, 0.0], &[1.0, 1.0]);
        let child = solver.solve_with_basis(&basis, None);
        assert_eq!(child.status, LpStatus::Infeasible);
    }

    #[test]
    fn solve_from_feasible_point_skips_phase_one() {
        // Knapsack relaxation with a known feasible integral point.
        let mut p = LpProblem::new();
        let x1 = p.add_binary("x1", -10.0);
        let x2 = p.add_binary("x2", -13.0);
        let x3 = p.add_binary("x3", -7.0);
        p.add_constraint(
            "cap",
            LinExpr::term(x1, 3.0).plus(x2, 4.0).plus(x3, 2.0),
            ConstraintSense::LessEqual,
            6.0,
        );
        let mut solver = RevisedSimplex::new(&p);
        let sol = solver.solve_from_point(&[0.0, 1.0, 1.0], None);
        assert_eq!(sol.status, LpStatus::Optimal);
        // LP optimum of the relaxation is -21 (x1 = 0, x2 = 1, x3 = 1 is integral
        // but the LP can do better: x1 fractional).
        assert!(sol.objective <= -20.0 - 1e-9);
    }

    #[test]
    fn repeated_warm_solves_with_many_bound_changes_stay_consistent() {
        // Stress the eta file/refactorization: alternate bound tightenings and
        // verify against a cold solve every time.
        let mut p = LpProblem::new();
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary(format!("x{i}"), -((i % 5 + 1) as f64)))
            .collect();
        let mut cap = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap.add(v, ((i % 3) + 1) as f64);
        }
        p.add_constraint("cap", cap, ConstraintSense::LessEqual, 7.0);
        for w in vars.windows(2) {
            p.add_constraint(
                "chain",
                LinExpr::term(w[0], 1.0).plus(w[1], -1.0),
                ConstraintSense::LessEqual,
                1.0,
            );
        }
        let mut solver = RevisedSimplex::new(&p);
        let root = solver.solve(None);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut basis = solver.basis_snapshot();
        let mut lower = vec![0.0; n];
        let mut upper = vec![1.0; n];
        for step in 0..n {
            if step % 2 == 0 {
                upper[step] = 0.0;
            } else {
                lower[step] = 1.0;
            }
            solver.set_structural_bounds(&lower, &upper);
            let warm = solver.solve_with_basis(&basis, None);
            let cold = solve_lp_with_bounds(&p, &lower, &upper);
            assert_eq!(warm.status, cold.status, "step {step}");
            if warm.status == LpStatus::Optimal {
                assert_close(warm.objective, cold.objective);
                basis = solver.basis_snapshot();
            } else {
                break;
            }
        }
    }
}
