//! Mixed-integer linear-program model builder.

use serde::{Deserialize, Serialize};

/// Identifier of a decision variable within an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl VarId {
    /// The variable's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarType {
    /// Continuous variable.
    Continuous,
    /// Binary variable (`{0, 1}`).
    Binary,
    /// General integer variable.
    Integer,
}

/// A decision variable: bounds, objective coefficient, type and name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Human-readable name (used in debugging output).
    pub name: String,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Coefficient in the (minimisation) objective.
    pub objective: f64,
    /// Variable type.
    pub var_type: VarType,
}

/// A sparse linear expression `Σ coeff · var`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms; variables may repeat (they are summed).
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// A single-term expression.
    pub fn term(var: VarId, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
        }
    }

    /// Adds `coeff · var` to the expression (builder style).
    pub fn plus(mut self, var: VarId, coeff: f64) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds `coeff · var` in place.
    pub fn add(&mut self, var: VarId, coeff: f64) {
        self.terms.push((var, coeff));
    }

    /// Evaluates the expression under an assignment (indexed by variable).
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|&(v, c)| c * assignment[v.index()])
            .sum()
    }

    /// Returns the expression with duplicate variables merged and zero coefficients
    /// dropped (terms come out sorted by variable index).
    pub fn simplified(&self) -> LinExpr {
        // Sort-and-merge on a flat vector: same output order as the former
        // `BTreeMap` accumulation (ascending variable index), no tree allocation
        // per term.
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|&(v, _)| v.index());
        let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(sorted.len());
        for &(v, c) in &sorted {
            match terms.last_mut() {
                Some(&mut (last, ref mut acc)) if last == v => *acc += c,
                _ => terms.push((v, c)),
            }
        }
        terms.retain(|&(_, c)| c.abs() > 1e-12);
        LinExpr { terms }
    }
}

/// Constraint comparison sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintSense {
    /// `expr ≤ rhs`
    LessEqual,
    /// `expr ≥ rhs`
    GreaterEqual,
    /// `expr = rhs`
    Equal,
}

/// A linear constraint `expr sense rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Optional name for debugging.
    pub name: String,
    /// Left-hand-side expression.
    pub expr: LinExpr,
    /// Comparison sense.
    pub sense: ConstraintSense,
    /// Right-hand-side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Checks whether an assignment satisfies the constraint up to `tol`.
    pub fn is_satisfied(&self, assignment: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval(assignment);
        match self.sense {
            ConstraintSense::LessEqual => lhs <= self.rhs + tol,
            ConstraintSense::GreaterEqual => lhs >= self.rhs - tol,
            ConstraintSense::Equal => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A mixed-integer linear program (minimisation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LpProblem {
    /// Decision variables.
    pub variables: Vec<Variable>,
    /// Linear constraints.
    pub constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        LpProblem::default()
    }

    /// Adds a continuous variable with the given bounds and objective coefficient.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        self.add_variable(name, lower, upper, objective, VarType::Continuous)
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_variable(name, 0.0, 1.0, objective, VarType::Binary)
    }

    /// Adds an integer variable with the given bounds and objective coefficient.
    pub fn add_integer(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        self.add_variable(name, lower, upper, objective, VarType::Integer)
    }

    /// Adds a variable with full control over its attributes.
    pub fn add_variable(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
        var_type: VarType,
    ) -> VarId {
        assert!(
            lower <= upper,
            "variable bounds must satisfy lower <= upper"
        );
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower,
            upper,
            objective,
            var_type,
        });
        id
    }

    /// Adds a constraint `expr sense rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: ConstraintSense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.into(),
            expr: expr.simplified(),
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The indices of integer-constrained (binary or integer) variables.
    pub fn integer_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.var_type, VarType::Binary | VarType::Integer))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, assignment: &[f64]) -> f64 {
        self.variables
            .iter()
            .enumerate()
            .map(|(i, v)| v.objective * assignment[i])
            .sum()
    }

    /// Builds the constraint matrix in compressed-sparse-column form: one
    /// column per variable, one row per constraint, duplicate terms merged.
    /// This is the structural block of the revised simplex's standard form
    /// ([`crate::sparse::SparseForm`] appends the slack and artificial blocks).
    pub fn structural_csc(&self) -> crate::sparse::CscMatrix {
        let n = self.num_variables();
        let m = self.num_constraints();
        let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, c) in self.constraints.iter().enumerate() {
            for &(v, a) in &c.expr.terms {
                by_col[v.index()].push((i, a));
            }
        }
        let mut csc = crate::sparse::CscMatrix::new(m);
        for col in &mut by_col {
            // Merge duplicate rows (hand-built constraints may repeat a term).
            col.sort_unstable_by_key(|&(r, _)| r);
            col.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    prev.1 += next.1;
                    true
                } else {
                    false
                }
            });
            csc.push_col(col);
        }
        csc
    }

    /// Checks whether an assignment is feasible (bounds, constraints and
    /// integrality) up to `tol`.
    pub fn is_feasible(&self, assignment: &[f64], tol: f64) -> bool {
        if assignment.len() != self.variables.len() {
            return false;
        }
        for (i, v) in self.variables.iter().enumerate() {
            let x = assignment[i];
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if matches!(v.var_type, VarType::Binary | VarType::Integer)
                && (x - x.round()).abs() > tol
            {
                return false;
            }
        }
        self.constraints
            .iter()
            .all(|c| c.is_satisfied(assignment, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_problem() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 10.0, 1.0);
        let y = p.add_binary("y", 2.0);
        let z = p.add_integer("z", 0.0, 5.0, 0.0);
        p.add_constraint(
            "c1",
            LinExpr::term(x, 1.0).plus(y, 3.0),
            ConstraintSense::LessEqual,
            7.0,
        );
        p.add_constraint(
            "c2",
            LinExpr::term(z, 1.0),
            ConstraintSense::GreaterEqual,
            2.0,
        );
        assert_eq!(p.num_variables(), 3);
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.integer_variables(), vec![y, z]);
        let assignment = vec![1.0, 1.0, 2.0];
        assert!(p.is_feasible(&assignment, 1e-9));
        assert_eq!(p.objective_value(&assignment), 3.0);
        // Violating integrality or a constraint is detected.
        assert!(!p.is_feasible(&[1.0, 0.5, 2.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 1.0, 0.0], 1e-9));
    }

    #[test]
    fn expression_evaluation_and_simplification() {
        let x = VarId(0);
        let y = VarId(1);
        let e = LinExpr::term(x, 2.0)
            .plus(y, 1.0)
            .plus(x, 3.0)
            .plus(y, -1.0);
        assert_eq!(e.eval(&[1.0, 10.0]), 5.0 + 0.0);
        let s = e.simplified();
        assert_eq!(s.terms, vec![(x, 5.0)]);
    }

    #[test]
    fn constraint_satisfaction_senses() {
        let x = VarId(0);
        let le = Constraint {
            name: "le".into(),
            expr: LinExpr::term(x, 1.0),
            sense: ConstraintSense::LessEqual,
            rhs: 2.0,
        };
        let ge = Constraint {
            sense: ConstraintSense::GreaterEqual,
            ..le.clone()
        };
        let eq = Constraint {
            sense: ConstraintSense::Equal,
            ..le.clone()
        };
        assert!(le.is_satisfied(&[1.0], 1e-9));
        assert!(!le.is_satisfied(&[3.0], 1e-9));
        assert!(ge.is_satisfied(&[3.0], 1e-9));
        assert!(!ge.is_satisfied(&[1.0], 1e-9));
        assert!(eq.is_satisfied(&[2.0], 1e-9));
        assert!(!eq.is_satisfied(&[1.5], 1e-9));
    }

    #[test]
    fn structural_csc_merges_duplicates_and_keeps_row_order() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 1.0, 0.0);
        let y = p.add_continuous("y", 0.0, 1.0, 0.0);
        p.add_constraint(
            "c0",
            LinExpr::term(x, 2.0).plus(y, 1.0),
            ConstraintSense::LessEqual,
            1.0,
        );
        // Hand-built constraint with a duplicated term bypassing simplification.
        p.constraints.push(Constraint {
            name: "c1".into(),
            expr: LinExpr::term(x, 1.0).plus(x, 3.0),
            sense: ConstraintSense::Equal,
            rhs: 2.0,
        });
        let csc = p.structural_csc();
        assert_eq!(csc.nrows(), 2);
        assert_eq!(csc.ncols(), 2);
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 2.0), (1, 4.0)]);
        assert_eq!(csc.col(1).collect::<Vec<_>>(), vec![(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn rejects_inverted_bounds() {
        let mut p = LpProblem::new();
        p.add_continuous("x", 5.0, 1.0, 0.0);
    }
}
