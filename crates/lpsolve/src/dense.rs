//! Dense two-phase primal simplex: the **differential-testing oracle**.
//!
//! This is the crate's original LP solver, retained verbatim in behaviour: a
//! dense full-tableau two-phase primal simplex in which variables are shifted
//! by their lower bounds, every finite upper bound becomes an explicit row,
//! slack/surplus variables turn the constraints into equalities and artificial
//! variables provide the Phase-1 starting basis. Pivoting uses Dantzig's rule
//! with a Bland's-rule fallback to guarantee termination.
//!
//! Production solves go through the sparse revised simplex
//! ([`crate::revised`]); the dense tableau survives as an independent oracle —
//! the two implementations share no pivoting code, so agreement on random
//! problems (see `tests/differential.rs`) is strong evidence of correctness.
//! It is also the measured baseline of the `BENCH_solver.json` benchmark.

use crate::model::{ConstraintSense, LpProblem};
use crate::revised::{LpSolution, LpStatus};
use std::time::Instant;

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

/// Solves the LP relaxation of `problem` with the dense tableau (integrality is
/// ignored).
pub fn solve_lp_dense(problem: &LpProblem) -> LpSolution {
    let lower: Vec<f64> = problem.variables.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = problem.variables.iter().map(|v| v.upper).collect();
    solve_lp_dense_with_bounds(problem, &lower, &upper)
}

/// Solves the LP relaxation of `problem` with overridden variable bounds.
pub fn solve_lp_dense_with_bounds(problem: &LpProblem, lower: &[f64], upper: &[f64]) -> LpSolution {
    solve_lp_dense_with_bounds_deadline(problem, lower, upper, None)
}

/// Like [`solve_lp_dense_with_bounds`], but aborts with
/// [`LpStatus::IterationLimit`] once `deadline` passes (checked inside the
/// pivot loop).
pub fn solve_lp_dense_with_bounds_deadline(
    problem: &LpProblem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpSolution {
    let n = problem.num_variables();
    assert_eq!(lower.len(), n);
    assert_eq!(upper.len(), n);
    if lower.iter().zip(upper).any(|(&l, &u)| l > u + EPS) {
        return LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            values: vec![],
        };
    }
    Tableau::build(problem, lower, upper).solve(problem, lower, deadline)
}

/// Internal simplex tableau.
struct Tableau {
    /// Constraint rows; each row has `ncols` coefficients followed by the rhs.
    rows: Vec<Vec<f64>>,
    /// Basis: for each row, the index of its basic column.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack + artificial).
    ncols: usize,
    /// Number of structural (shifted original) columns.
    nstruct: usize,
    /// Column indices of the artificial variables.
    artificials: Vec<usize>,
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl Tableau {
    /// Builds the Phase-1 tableau for the bounded problem.
    fn build(problem: &LpProblem, lower: &[f64], upper: &[f64]) -> Tableau {
        let n = problem.num_variables();
        // Collect rows as (coefficients over structural vars, sense, rhs) with the
        // lower-bound shift already applied.
        let mut raw: Vec<(Vec<f64>, ConstraintSense, f64)> = Vec::new();
        for c in &problem.constraints {
            let mut coeffs = vec![0.0; n];
            for &(v, a) in &c.expr.terms {
                coeffs[v.index()] += a;
            }
            let shift: f64 = coeffs.iter().zip(lower).map(|(&a, &l)| a * l).sum();
            raw.push((coeffs, c.sense, c.rhs - shift));
        }
        // Finite upper bounds become rows x'_i <= u_i - l_i.
        for i in 0..n {
            if upper[i].is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                raw.push((coeffs, ConstraintSense::LessEqual, upper[i] - lower[i]));
            }
        }
        // Normalise to non-negative rhs.
        for (coeffs, sense, rhs) in &mut raw {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *sense = match *sense {
                    ConstraintSense::LessEqual => ConstraintSense::GreaterEqual,
                    ConstraintSense::GreaterEqual => ConstraintSense::LessEqual,
                    ConstraintSense::Equal => ConstraintSense::Equal,
                };
            }
        }
        let m = raw.len();
        // Count auxiliary columns.
        let num_slack = raw
            .iter()
            .filter(|(_, s, _)| !matches!(s, ConstraintSense::Equal))
            .count();
        let ncols_upper = n + num_slack + m; // upper bound on columns (artificials added lazily)
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut artificials = Vec::new();
        let mut next_aux = n;
        // First pass: slack / surplus columns.
        let mut slack_col_of_row = vec![None; m];
        for (i, (coeffs, sense, rhs)) in raw.iter().enumerate() {
            let mut row = vec![0.0; ncols_upper + 1];
            row[..n].copy_from_slice(coeffs);
            row[ncols_upper] = *rhs;
            match sense {
                ConstraintSense::LessEqual => {
                    row[next_aux] = 1.0;
                    slack_col_of_row[i] = Some(next_aux);
                    basis[i] = next_aux;
                    next_aux += 1;
                }
                ConstraintSense::GreaterEqual => {
                    row[next_aux] = -1.0;
                    next_aux += 1;
                }
                ConstraintSense::Equal => {}
            }
            rows.push(row);
        }
        // Second pass: artificial variables for rows without a natural basis column.
        for i in 0..m {
            if basis[i] == usize::MAX {
                rows[i][next_aux] = 1.0;
                basis[i] = next_aux;
                artificials.push(next_aux);
                next_aux += 1;
            }
        }
        let ncols = next_aux;
        // Truncate every row to the actual number of columns (keeping rhs last).
        for row in &mut rows {
            let rhs = row[ncols_upper];
            row.truncate(ncols);
            row.push(rhs);
        }
        Tableau {
            rows,
            basis,
            ncols,
            nstruct: n,
            artificials,
        }
    }

    /// Runs both simplex phases and extracts the solution.
    fn solve(
        mut self,
        problem: &LpProblem,
        lower: &[f64],
        deadline: Option<Instant>,
    ) -> LpSolution {
        let max_iter = 200 * (self.ncols + self.rows.len() + 10);

        // Phase 1: minimise the sum of artificial variables.
        if !self.artificials.is_empty() {
            let mut obj = vec![0.0; self.ncols];
            for &a in &self.artificials {
                obj[a] = 1.0;
            }
            let (mut objrow, mut objval) = self.price_out(&obj);
            match self.iterate(&mut objrow, &mut objval, max_iter, None, deadline) {
                PhaseOutcome::Unbounded => {
                    // Phase 1 objective is bounded below by 0; treat as numerical trouble.
                    return LpSolution {
                        status: LpStatus::IterationLimit,
                        objective: f64::INFINITY,
                        values: vec![],
                    };
                }
                PhaseOutcome::IterationLimit => {
                    return LpSolution {
                        status: LpStatus::IterationLimit,
                        objective: f64::INFINITY,
                        values: vec![],
                    };
                }
                PhaseOutcome::Optimal => {}
            }
            if objval > 1e-6 {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![],
                };
            }
            // Drive any artificial variables that remain basic (at value 0) out of
            // the basis, or drop their (redundant) rows.
            self.remove_basic_artificials();
        }

        // Phase 2: original objective over the shifted structural variables.
        let banned: Vec<bool> = {
            let mut b = vec![false; self.ncols];
            for &a in &self.artificials {
                b[a] = true;
            }
            b
        };
        let mut obj = vec![0.0; self.ncols];
        for (i, v) in problem.variables.iter().enumerate() {
            obj[i] = v.objective;
        }
        let (mut objrow, mut objval) = self.price_out(&obj);
        let outcome = self.iterate(&mut objrow, &mut objval, max_iter, Some(&banned), deadline);
        let status = match outcome {
            PhaseOutcome::Optimal => LpStatus::Optimal,
            PhaseOutcome::Unbounded => LpStatus::Unbounded,
            PhaseOutcome::IterationLimit => LpStatus::IterationLimit,
        };
        if status != LpStatus::Optimal {
            return LpSolution {
                status,
                objective: f64::NEG_INFINITY,
                values: vec![],
            };
        }
        // Extract structural values (shifted back by the lower bounds).
        let mut values = vec![0.0; problem.num_variables()];
        for (i, row) in self.rows.iter().enumerate() {
            let b = self.basis[i];
            if b < self.nstruct {
                values[b] = row[self.ncols];
            }
        }
        for (i, v) in values.iter_mut().enumerate() {
            *v += lower[i];
        }
        let objective = problem.objective_value(&values);
        LpSolution {
            status: LpStatus::Optimal,
            objective,
            values,
        }
    }

    /// Builds the reduced-cost row for `obj` by pricing out the basic columns.
    /// Returns the reduced-cost row and the current objective value.
    fn price_out(&self, obj: &[f64]) -> (Vec<f64>, f64) {
        let mut objrow = obj.to_vec();
        let mut objval = 0.0;
        for (i, row) in self.rows.iter().enumerate() {
            let b = self.basis[i];
            let cb = obj[b];
            if cb != 0.0 {
                for j in 0..self.ncols {
                    objrow[j] -= cb * row[j];
                }
                objval += cb * row[self.ncols];
            }
        }
        (objrow, objval)
    }

    /// Runs simplex iterations on the current tableau with the given reduced-cost
    /// row. `banned` columns may never enter the basis.
    fn iterate(
        &mut self,
        objrow: &mut [f64],
        objval: &mut f64,
        max_iter: usize,
        banned: Option<&[bool]>,
        deadline: Option<Instant>,
    ) -> PhaseOutcome {
        let bland_threshold = max_iter / 2;
        for iter in 0..max_iter {
            if iter & 31 == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return PhaseOutcome::IterationLimit;
                    }
                }
            }
            let use_bland = iter > bland_threshold;
            // Entering column.
            let mut entering = None;
            if use_bland {
                for j in 0..self.ncols {
                    if banned.is_some_and(|b| b[j]) {
                        continue;
                    }
                    if objrow[j] < -PIVOT_EPS {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -PIVOT_EPS;
                for j in 0..self.ncols {
                    if banned.is_some_and(|b| b[j]) {
                        continue;
                    }
                    if objrow[j] < best {
                        best = objrow[j];
                        entering = Some(j);
                    }
                }
            }
            let Some(col) = entering else {
                return PhaseOutcome::Optimal;
            };
            // Ratio test.
            let mut leaving: Option<(usize, f64)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                let a = row[col];
                if a > PIVOT_EPS {
                    let ratio = row[self.ncols] / a;
                    let better = match leaving {
                        None => true,
                        Some((li, lr)) => {
                            ratio < lr - EPS || (ratio < lr + EPS && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        leaving = Some((i, ratio));
                    }
                }
            }
            let Some((pivot_row, _)) = leaving else {
                return PhaseOutcome::Unbounded;
            };
            self.pivot(pivot_row, col, objrow, objval);
        }
        PhaseOutcome::IterationLimit
    }

    /// Performs a pivot on `(pivot_row, col)`, updating all rows and the objective.
    fn pivot(&mut self, pivot_row: usize, col: usize, objrow: &mut [f64], objval: &mut f64) {
        let width = self.ncols + 1;
        let pivot_value = self.rows[pivot_row][col];
        debug_assert!(pivot_value.abs() > EPS);
        for j in 0..width {
            self.rows[pivot_row][j] /= pivot_value;
        }
        let pivot_copy = self.rows[pivot_row].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == pivot_row {
                continue;
            }
            let factor = row[col];
            if factor.abs() > EPS {
                for j in 0..width {
                    row[j] -= factor * pivot_copy[j];
                }
            }
        }
        let ofactor = objrow[col];
        if ofactor.abs() > EPS {
            for (j, item) in objrow.iter_mut().enumerate().take(self.ncols) {
                *item -= ofactor * pivot_copy[j];
            }
            // The entering variable rises to θ = rhs/pivot, changing the objective
            // by (reduced cost) · θ.
            *objval += ofactor * pivot_copy[self.ncols];
        }
        self.basis[pivot_row] = col;
    }

    /// After Phase 1, pivots basic artificial variables out of the basis (they are
    /// at value 0) or drops redundant rows where that is impossible.
    fn remove_basic_artificials(&mut self) {
        let artificial_set: std::collections::HashSet<usize> =
            self.artificials.iter().copied().collect();
        let mut dummy_obj = vec![0.0; self.ncols];
        let mut dummy_val = 0.0;
        let mut row_index = 0;
        while row_index < self.rows.len() {
            let b = self.basis[row_index];
            if artificial_set.contains(&b) {
                // Find a non-artificial column with a nonzero coefficient.
                let replacement = (0..self.ncols).find(|j| {
                    !artificial_set.contains(j) && self.rows[row_index][*j].abs() > PIVOT_EPS
                });
                match replacement {
                    Some(col) => {
                        self.pivot(row_index, col, &mut dummy_obj, &mut dummy_val);
                        row_index += 1;
                    }
                    None => {
                        // The row is redundant: remove it.
                        self.rows.remove(row_index);
                        self.basis.remove(row_index);
                    }
                }
            } else {
                row_index += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinExpr, LpProblem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_variable_lp() {
        // max x + y  s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0  -> min -(x+y)
        // Optimum at x = 8/5, y = 6/5 with value 14/5.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, -1.0);
        p.add_constraint(
            "c1",
            LinExpr::term(x, 1.0).plus(y, 2.0),
            ConstraintSense::LessEqual,
            4.0,
        );
        p.add_constraint(
            "c2",
            LinExpr::term(x, 3.0).plus(y, 1.0),
            ConstraintSense::LessEqual,
            6.0,
        );
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -14.0 / 5.0);
        assert_close(sol.values[x.index()], 8.0 / 5.0);
        assert_close(sol.values[y.index()], 6.0 / 5.0);
    }

    #[test]
    fn equality_and_geq_constraints() {
        // min 2x + 3y  s.t. x + y = 10, x >= 4, y >= 2.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint(
            "sum",
            LinExpr::term(x, 1.0).plus(y, 1.0),
            ConstraintSense::Equal,
            10.0,
        );
        p.add_constraint(
            "xmin",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            4.0,
        );
        p.add_constraint(
            "ymin",
            LinExpr::term(y, 1.0),
            ConstraintSense::GreaterEqual,
            2.0,
        );
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        // Cheapest: maximise x (cost 2), so x = 8, y = 2.
        assert_close(sol.values[x.index()], 8.0);
        assert_close(sol.values[y.index()], 2.0);
        assert_close(sol.objective, 22.0);
    }

    #[test]
    fn variable_bounds_are_respected() {
        // min -x with 1 <= x <= 5.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 1.0, 5.0, -1.0);
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], 5.0);
        assert_close(sol.objective, -5.0);
        // And the lower bound matters for minimisation of +x.
        let mut p2 = LpProblem::new();
        let x2 = p2.add_continuous("x", 1.0, 5.0, 1.0);
        let sol2 = solve_lp_dense(&p2);
        assert_close(sol2.values[x2.index()], 1.0);
    }

    #[test]
    fn infeasible_problem_is_detected() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 10.0, 1.0);
        p.add_constraint(
            "lo",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            5.0,
        );
        p.add_constraint("hi", LinExpr::term(x, 1.0), ConstraintSense::LessEqual, 3.0);
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        p.add_constraint("c", LinExpr::term(x, -1.0), ConstraintSense::LessEqual, 1.0);
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_are_handled() {
        // min x with -5 <= x <= 5 and x >= -3.
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", -5.0, 5.0, 1.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            -3.0,
        );
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], -3.0);
    }

    #[test]
    fn solve_with_overridden_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 10.0, -1.0);
        let sol = solve_lp_dense_with_bounds(&p, &[0.0], &[4.0]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[x.index()], 4.0);
        // Crossing bounds are reported infeasible immediately.
        let bad = solve_lp_dense_with_bounds(&p, &[5.0], &[4.0]);
        assert_eq!(bad.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A problem with redundant constraints (degenerate vertices).
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, -1.0);
        for k in 0..5 {
            p.add_constraint(
                format!("c{k}"),
                LinExpr::term(x, 1.0).plus(y, 1.0),
                ConstraintSense::LessEqual,
                2.0,
            );
        }
        p.add_constraint(
            "cap",
            LinExpr::term(x, 1.0),
            ConstraintSense::LessEqual,
            2.0,
        );
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -2.0);
    }

    #[test]
    fn lp_relaxation_of_binary_problem() {
        // Binary variables are relaxed to [0, 1].
        let mut p = LpProblem::new();
        let x = p.add_binary("x", -3.0);
        let y = p.add_binary("y", -2.0);
        p.add_constraint(
            "c",
            LinExpr::term(x, 2.0).plus(y, 2.0),
            ConstraintSense::LessEqual,
            3.0,
        );
        let sol = solve_lp_dense(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        // LP optimum: x = 1, y = 0.5 -> objective -4.
        assert_close(sol.objective, -4.0);
    }
}
