//! Compressed-sparse-column storage and the bounded standard form.
//!
//! The revised simplex works on the **bounded standard form**
//!
//! ```text
//! min c'x   s.t.   A x + s = b,   l ≤ (x, s) ≤ u,
//! ```
//!
//! where every constraint row gets one *logical* (slack) column whose bounds
//! encode the comparison sense (`≤` → `s ∈ [0, ∞)`, `≥` → `s ∈ (−∞, 0]`,
//! `=` → `s = 0`). Variable bounds are handled **natively by the ratio test**
//! — unlike the dense oracle, no extra row is materialized per finite upper
//! bound, which for the all-binary MBSP ILPs halves the row count. A third
//! block of per-row artificial columns (normally fixed at zero) provides the
//! Phase-1 starting basis when no warm basis is available.

use crate::model::{ConstraintSense, LpProblem};

/// A sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, Default)]
pub struct CscMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An empty matrix with `nrows` rows and no columns.
    pub fn new(nrows: usize) -> Self {
        CscMatrix {
            nrows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Appends a column given as `(row, value)` entries; returns its index.
    /// Entries with duplicate rows are allowed (they act additively).
    pub fn push_col(&mut self, entries: &[(usize, f64)]) -> usize {
        for &(r, v) in entries {
            assert!(
                r < self.nrows,
                "row {r} out of range for {} rows",
                self.nrows
            );
            if v != 0.0 {
                self.row_idx.push(r);
                self.values.push(v);
            }
        }
        self.col_ptr.push(self.row_idx.len());
        self.ncols() - 1
    }

    /// Iterates over the `(row, value)` entries of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// `y += alpha · A[:, j]` (dense scatter of one column).
    #[inline]
    pub fn scatter_col(&self, j: usize, alpha: f64, y: &mut [f64]) {
        for (r, v) in self.col(j) {
            y[r] += alpha * v;
        }
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    pub fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        self.col(j).map(|(r, v)| v * y[r]).sum()
    }
}

/// The bounded standard form of an [`LpProblem`]: the constraint matrix in CSC
/// layout with one slack and one artificial column per row appended after the
/// structural columns, plus costs, right-hand sides and bounds per column.
#[derive(Debug, Clone)]
pub struct SparseForm {
    /// Number of structural (original problem) columns.
    pub nstruct: usize,
    /// Number of constraint rows.
    pub nrows: usize,
    /// The matrix: `nstruct` structural, `nrows` slack, `nrows` artificial columns.
    pub cols: CscMatrix,
    /// Phase-2 (true) objective per column; zero outside the structural block.
    pub cost: Vec<f64>,
    /// Right-hand side per row.
    pub rhs: Vec<f64>,
    /// Lower bound per column.
    pub lower: Vec<f64>,
    /// Upper bound per column.
    pub upper: Vec<f64>,
}

impl SparseForm {
    /// Builds the standard form of `problem` under the given structural bounds.
    pub fn build(problem: &LpProblem, lower: &[f64], upper: &[f64]) -> SparseForm {
        let n = problem.num_variables();
        let m = problem.num_constraints();
        assert_eq!(lower.len(), n);
        assert_eq!(upper.len(), n);

        let mut cols = problem.structural_csc();
        let mut cost = vec![0.0; n + 2 * m];
        let mut lo = vec![0.0; n + 2 * m];
        let mut up = vec![0.0; n + 2 * m];
        for (j, v) in problem.variables.iter().enumerate() {
            cost[j] = v.objective;
            lo[j] = lower[j];
            up[j] = upper[j];
        }
        let mut rhs = Vec::with_capacity(m);
        for (i, c) in problem.constraints.iter().enumerate() {
            rhs.push(c.rhs);
            let j = cols.push_col(&[(i, 1.0)]);
            debug_assert_eq!(j, n + i);
            let (l, u) = match c.sense {
                ConstraintSense::LessEqual => (0.0, f64::INFINITY),
                ConstraintSense::GreaterEqual => (f64::NEG_INFINITY, 0.0),
                ConstraintSense::Equal => (0.0, 0.0),
            };
            lo[n + i] = l;
            up[n + i] = u;
        }
        // Artificial columns, fixed at zero until a Phase-1 crash frees them.
        for i in 0..m {
            let j = cols.push_col(&[(i, 1.0)]);
            debug_assert_eq!(j, n + m + i);
        }
        SparseForm {
            nstruct: n,
            nrows: m,
            cols,
            cost,
            rhs,
            lower: lo,
            upper: up,
        }
    }

    /// Total number of columns (structural + slack + artificial).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.nstruct + 2 * self.nrows
    }

    /// Column index of the slack of row `i`.
    #[inline]
    pub fn slack(&self, i: usize) -> usize {
        self.nstruct + i
    }

    /// Column index of the artificial of row `i`.
    #[inline]
    pub fn artificial(&self, i: usize) -> usize {
        self.nstruct + self.nrows + i
    }

    /// True if `j` is an artificial column.
    #[inline]
    pub fn is_artificial(&self, j: usize) -> bool {
        j >= self.nstruct + self.nrows
    }

    /// Overrides the structural bounds (used by branch and bound, which tightens
    /// one bound per node on a shared form).
    pub fn set_structural_bounds(&mut self, lower: &[f64], upper: &[f64]) {
        assert_eq!(lower.len(), self.nstruct);
        assert_eq!(upper.len(), self.nstruct);
        self.lower[..self.nstruct].copy_from_slice(lower);
        self.upper[..self.nstruct].copy_from_slice(upper);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinExpr, LpProblem};

    #[test]
    fn csc_roundtrip_and_ops() {
        let mut m = CscMatrix::new(3);
        m.push_col(&[(0, 1.0), (2, -2.0)]);
        m.push_col(&[(1, 4.0)]);
        m.push_col(&[]);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, -2.0)]);
        assert_eq!(m.col(2).count(), 0);
        let mut y = vec![0.0; 3];
        m.scatter_col(0, 2.0, &mut y);
        assert_eq!(y, vec![2.0, 0.0, -4.0]);
        assert_eq!(m.dot_col(0, &[1.0, 1.0, 1.0]), -1.0);
        // Explicit zeros are dropped.
        m.push_col(&[(0, 0.0), (1, 5.0)]);
        assert_eq!(m.col(3).collect::<Vec<_>>(), vec![(1, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn csc_rejects_out_of_range_rows() {
        let mut m = CscMatrix::new(2);
        m.push_col(&[(2, 1.0)]);
    }

    #[test]
    fn standard_form_layout_and_slack_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_continuous("x", 0.0, 5.0, 1.0);
        let y = p.add_continuous("y", -1.0, 1.0, -2.0);
        p.add_constraint(
            "le",
            LinExpr::term(x, 1.0).plus(y, 2.0),
            ConstraintSense::LessEqual,
            4.0,
        );
        p.add_constraint(
            "ge",
            LinExpr::term(x, 1.0),
            ConstraintSense::GreaterEqual,
            1.0,
        );
        p.add_constraint("eq", LinExpr::term(y, 1.0), ConstraintSense::Equal, 0.5);
        let lower: Vec<f64> = p.variables.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = p.variables.iter().map(|v| v.upper).collect();
        let f = SparseForm::build(&p, &lower, &upper);
        assert_eq!(f.nstruct, 2);
        assert_eq!(f.nrows, 3);
        assert_eq!(f.ncols(), 8);
        assert_eq!(f.cols.ncols(), 8);
        assert_eq!(f.cost[..2], [1.0, -2.0]);
        assert_eq!(f.rhs, vec![4.0, 1.0, 0.5]);
        // Slack bounds encode the senses.
        assert_eq!(
            (f.lower[f.slack(0)], f.upper[f.slack(0)]),
            (0.0, f64::INFINITY)
        );
        assert_eq!(
            (f.lower[f.slack(1)], f.upper[f.slack(1)]),
            (f64::NEG_INFINITY, 0.0)
        );
        assert_eq!((f.lower[f.slack(2)], f.upper[f.slack(2)]), (0.0, 0.0));
        // Artificials are pinned at zero.
        assert_eq!(
            (f.lower[f.artificial(0)], f.upper[f.artificial(0)]),
            (0.0, 0.0)
        );
        assert!(f.is_artificial(f.artificial(2)));
        assert!(!f.is_artificial(f.slack(2)));
    }

    #[test]
    fn set_structural_bounds_only_touches_structurals() {
        let mut p = LpProblem::new();
        p.add_continuous("x", 0.0, 1.0, 0.0);
        let f0 = SparseForm::build(&p, &[0.0], &[1.0]);
        let mut f = f0.clone();
        f.set_structural_bounds(&[0.5], &[0.75]);
        assert_eq!(f.lower[0], 0.5);
        assert_eq!(f.upper[0], 0.75);
        assert_eq!(f.lower[1..], f0.lower[1..]);
        assert_eq!(f.upper[1..], f0.upper[1..]);
    }
}
