//! Basis factorization for the revised simplex: sparse LU plus an eta file.
//!
//! The basis matrix `B` (one column of the standard-form constraint matrix per
//! row position) is factorized as `P B = L U` by left-looking sparse Gaussian
//! elimination with partial pivoting. Subsequent basis changes are absorbed as
//! **product-form (eta) updates**: replacing the column at basis position `r`
//! by a column whose forward-transformed image is `w = B⁻¹ a_q` appends the eta
//! matrix `E` with `E e_r = w`, so that `B_new = B E`. Solves apply the LU
//! factors and then the eta file ([`Factorization::ftran`]) or the eta file in
//! reverse and then the transposed factors ([`Factorization::btran`]).
//!
//! The eta file grows with every pivot, so the factorization asks for a
//! **periodic refactorization** ([`Factorization::should_refactorize`]) once
//! the file is long or dense; refactorizing also restores numerical accuracy.

use crate::sparse::CscMatrix;

/// Below this magnitude a value is treated as an exact zero in the factors.
const DROP_TOL: f64 = 1e-13;
/// Minimal acceptable pivot magnitude during elimination and eta updates.
const PIVOT_TOL: f64 = 1e-9;
/// Refactorize after this many eta updates.
const MAX_ETAS: usize = 64;

/// One product-form update: the basis column at position `pos` was replaced by
/// a column with forward-transformed image `w` (`entries` holds `w` off the
/// pivot, `pivot` holds `w[pos]`).
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    entries: Vec<(usize, f64)>,
    pivot: f64,
}

/// Sparse LU factors of the current basis plus the eta file of updates since
/// the last refactorization.
#[derive(Debug, Default)]
pub struct Factorization {
    /// Dimension `m` of the basis.
    m: usize,
    /// `pivot_row[k]` = original row chosen as the `k`-th pivot.
    pivot_row: Vec<usize>,
    /// Inverse permutation: `row_pos[r]` = elimination position of row `r`.
    row_pos: Vec<usize>,
    /// Column `k` of `L` (unit diagonal implicit): `(original row, multiplier)`.
    lcols: Vec<Vec<(usize, f64)>>,
    /// Column `k` of `U` above the diagonal: `(elimination position < k, value)`.
    ucols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U`.
    udiag: Vec<f64>,
    /// Product-form updates since the last refactorization.
    etas: Vec<Eta>,
    /// Total number of off-pivot eta entries (refactorization heuristic).
    eta_nnz: usize,
    /// Dense scratch used by the elimination and the solves.
    work: Vec<f64>,
    mark: Vec<bool>,
    touched: Vec<usize>,
    scratch: Vec<f64>,
}

impl Factorization {
    /// An empty factorization; call [`Factorization::refactorize`] before use.
    pub fn new() -> Self {
        Factorization::default()
    }

    /// Number of eta updates absorbed since the last refactorization.
    pub fn updates(&self) -> usize {
        self.etas.len()
    }

    /// True when the eta file is long or dense enough that refactorizing is
    /// cheaper (and numerically safer) than continuing to stack updates.
    pub fn should_refactorize(&self) -> bool {
        self.etas.len() >= MAX_ETAS || self.eta_nnz > 4 * self.m + 128
    }

    /// Factorizes the basis given by `basic` (column indices into `matrix`, one
    /// per row position). Returns `false` if the basis is numerically singular.
    pub fn refactorize(&mut self, matrix: &CscMatrix, basic: &[usize]) -> bool {
        let m = basic.len();
        self.m = m;
        self.pivot_row.clear();
        self.pivot_row.resize(m, usize::MAX);
        self.row_pos.clear();
        self.row_pos.resize(m, usize::MAX);
        self.lcols.clear();
        self.ucols.clear();
        self.udiag.clear();
        self.etas.clear();
        self.eta_nnz = 0;
        self.work.clear();
        self.work.resize(m, 0.0);
        self.mark.clear();
        self.mark.resize(m, false);
        self.scratch.clear();
        self.scratch.resize(m, 0.0);
        self.touched.clear();

        for k in 0..m {
            // Scatter basis column k into the dense workspace.
            self.touched.clear();
            for (r, v) in matrix.col(basic[k]) {
                if !self.mark[r] {
                    self.mark[r] = true;
                    self.touched.push(r);
                    self.work[r] = v;
                } else {
                    self.work[r] += v;
                }
            }
            // Eliminate with the previously chosen pivots, in order.
            for kk in 0..k {
                let xk = self.work[self.pivot_row[kk]];
                if xk.abs() <= DROP_TOL {
                    continue;
                }
                // Split borrows: lcols[kk] is only read, work/mark/touched written.
                let (lcol, work, mark, touched) = (
                    &self.lcols[kk],
                    &mut self.work,
                    &mut self.mark,
                    &mut self.touched,
                );
                for &(r, lv) in lcol {
                    if !mark[r] {
                        mark[r] = true;
                        touched.push(r);
                    }
                    work[r] -= lv * xk;
                }
            }
            // Collect the U column and choose the pivot by partial pivoting.
            let mut ucol = Vec::new();
            let mut pivot: Option<(usize, f64)> = None;
            for &r in &self.touched {
                let v = self.work[r];
                let kk = self.row_pos[r];
                if kk != usize::MAX {
                    if v.abs() > DROP_TOL {
                        ucol.push((kk, v));
                    }
                } else if v.abs() > PIVOT_TOL && pivot.map_or(true, |(_, pv)| v.abs() > pv.abs()) {
                    pivot = Some((r, v));
                }
            }
            let Some((pr, pv)) = pivot else {
                // Singular basis: clean the workspace and report failure.
                for &r in &self.touched {
                    self.work[r] = 0.0;
                    self.mark[r] = false;
                }
                return false;
            };
            let mut lcol = Vec::new();
            for &r in &self.touched {
                if self.row_pos[r] == usize::MAX && r != pr {
                    let lv = self.work[r] / pv;
                    if lv.abs() > DROP_TOL {
                        lcol.push((r, lv));
                    }
                }
                self.work[r] = 0.0;
                self.mark[r] = false;
            }
            self.pivot_row[k] = pr;
            self.row_pos[pr] = k;
            self.udiag.push(pv);
            self.ucols.push(ucol);
            self.lcols.push(lcol);
        }
        true
    }

    /// Solves `B x = a` in place. On entry `y` holds `a` indexed by original
    /// row; on exit it holds `x` indexed by basis position.
    pub fn ftran(&mut self, y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.m);
        let m = self.m;
        // Forward solve with L (original-row indexing).
        for k in 0..m {
            let yk = y[self.pivot_row[k]];
            if yk.abs() > DROP_TOL {
                for &(r, lv) in &self.lcols[k] {
                    y[r] -= lv * yk;
                }
            }
        }
        // Permute into elimination order, then back-substitute with U.
        for k in 0..m {
            self.scratch[k] = y[self.pivot_row[k]];
        }
        y.copy_from_slice(&self.scratch);
        for j in (0..m).rev() {
            let xj = y[j] / self.udiag[j];
            y[j] = xj;
            if xj.abs() > DROP_TOL {
                for &(kk, uv) in &self.ucols[j] {
                    y[kk] -= uv * xj;
                }
            }
        }
        // Apply the eta file in order.
        for eta in &self.etas {
            let zr = y[eta.pos] / eta.pivot;
            y[eta.pos] = zr;
            if zr.abs() > DROP_TOL {
                for &(i, d) in &eta.entries {
                    y[i] -= d * zr;
                }
            }
        }
    }

    /// Solves `Bᵀ y = c` in place. On entry `y` holds `c` indexed by basis
    /// position; on exit it holds the solution indexed by original row.
    pub fn btran(&mut self, y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.m);
        let m = self.m;
        // Apply the transposed eta file in reverse order.
        for eta in self.etas.iter().rev() {
            let mut s = y[eta.pos];
            for &(i, d) in &eta.entries {
                s -= d * y[i];
            }
            y[eta.pos] = s / eta.pivot;
        }
        // Forward solve with Uᵀ (elimination order).
        for j in 0..m {
            let mut s = y[j];
            for &(kk, uv) in &self.ucols[j] {
                s -= uv * y[kk];
            }
            y[j] = s / self.udiag[j];
        }
        // Backward solve with Lᵀ.
        for k in (0..m).rev() {
            let mut s = y[k];
            for &(r, lv) in &self.lcols[k] {
                s -= lv * y[self.row_pos[r]];
            }
            y[k] = s;
        }
        // Permute back to original-row indexing.
        for k in 0..m {
            self.scratch[self.pivot_row[k]] = y[k];
        }
        y.copy_from_slice(&self.scratch);
    }

    /// Absorbs a basis change as an eta update: the column at basis position
    /// `pos` is replaced by the column whose forward-transformed image is `w`
    /// (dense, basis-position indexed). Returns `false` when the pivot element
    /// `w[pos]` is too small, in which case the caller must refactorize.
    pub fn update(&mut self, w: &[f64], pos: usize) -> bool {
        debug_assert_eq!(w.len(), self.m);
        let pivot = w[pos];
        if pivot.abs() < PIVOT_TOL {
            return false;
        }
        let mut entries = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if i != pos && v.abs() > DROP_TOL {
                entries.push((i, v));
            }
        }
        self.eta_nnz += entries.len();
        self.etas.push(Eta {
            pos,
            entries,
            pivot,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscMatrix;

    /// Builds a CSC matrix from dense columns.
    fn csc(nrows: usize, cols: &[&[f64]]) -> CscMatrix {
        let mut m = CscMatrix::new(nrows);
        for col in cols {
            let entries: Vec<(usize, f64)> = col
                .iter()
                .enumerate()
                .filter(|(_, v)| v.abs() > 0.0)
                .map(|(r, &v)| (r, v))
                .collect();
            m.push_col(&entries);
        }
        m
    }

    fn assert_vec_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn ftran_btran_solve_a_dense_3x3_system() {
        // B = [[2,1,0],[1,3,1],[0,1,4]] (columns).
        let m = csc(3, &[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let mut f = Factorization::new();
        assert!(f.refactorize(&m, &[0, 1, 2]));
        // Solve B x = [3, 7, 13]: x = (1, 1, 3).
        let mut y = vec![3.0, 7.0, 13.0];
        f.ftran(&mut y);
        assert_vec_close(&y, &[1.0, 1.0, 3.0]);
        // Solve Bᵀ y = [4, 8, 13] (columns of B become rows): y = (1, 2, ...)?
        // Check via residual instead: pick y0, compute c = Bᵀ y0, solve, compare.
        let y0 = [0.5, -1.0, 2.0];
        // c_k = column k · y0.
        let mut c = vec![0.0; 3];
        for k in 0..3 {
            c[k] = m.dot_col(k, &y0);
        }
        f.btran(&mut c);
        assert_vec_close(&c, &y0);
    }

    #[test]
    fn eta_updates_track_column_replacement() {
        let base = csc(3, &[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let mut f = Factorization::new();
        assert!(f.refactorize(&base, &[0, 1, 2]));
        // Replace basis position 1 by the column a = (1, 2, 1).
        let mut w = vec![1.0, 2.0, 1.0];
        let a = w.clone();
        f.ftran(&mut w); // identity basis: w = a
        assert!(f.update(&w, 1));
        // New basis columns: e0, a, e2. Solve B x = a → x = e1.
        let mut rhs = a.clone();
        f.ftran(&mut rhs);
        assert_vec_close(&rhs, &[0.0, 1.0, 0.0]);
        // Bᵀ y = c with y chosen, via round trip.
        let y0 = [1.0, -2.0, 0.5];
        let bc: Vec<f64> = vec![
            y0[0],                                      // e0 · y0
            a[0] * y0[0] + a[1] * y0[1] + a[2] * y0[2], // a · y0
            y0[2],                                      // e2 · y0
        ];
        let mut c = bc;
        f.btran(&mut c);
        assert_vec_close(&c, &y0);
    }

    #[test]
    fn singular_basis_is_rejected() {
        let m = csc(2, &[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut f = Factorization::new();
        assert!(!f.refactorize(&m, &[0, 1]));
        // A proper basis on the same matrix still works after the failure.
        let m2 = csc(2, &[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(f.refactorize(&m2, &[0, 1]));
        let mut y = vec![1.0, 3.0];
        f.ftran(&mut y);
        // B = [[1,0],[2,1]]: x = (1, 1).
        assert_vec_close(&y, &[1.0, 1.0]);
    }

    #[test]
    fn permuted_pivoting_handles_zero_leading_entries() {
        // First column starts with a zero: partial pivoting must permute.
        let m = csc(2, &[&[0.0, 1.0], &[1.0, 1.0]]);
        let mut f = Factorization::new();
        assert!(f.refactorize(&m, &[0, 1]));
        // B = [[0,1],[1,1]]; solve B x = (1, 2): x1 + x2·1 = ... x = (1, 1).
        let mut y = vec![1.0, 2.0];
        f.ftran(&mut y);
        assert_vec_close(&y, &[1.0, 1.0]);
    }

    #[test]
    fn refactorization_resets_the_eta_file() {
        let base = csc(2, &[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut f = Factorization::new();
        assert!(f.refactorize(&base, &[0, 1]));
        let mut w = vec![2.0, 1.0];
        f.ftran(&mut w);
        assert!(f.update(&w, 0));
        assert_eq!(f.updates(), 1);
        assert!(f.refactorize(&base, &[0, 1]));
        assert_eq!(f.updates(), 0);
    }

    #[test]
    fn tiny_pivot_update_is_refused() {
        let base = csc(2, &[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut f = Factorization::new();
        assert!(f.refactorize(&base, &[0, 1]));
        let w = vec![1e-12, 1.0];
        assert!(!f.update(&w, 0));
    }
}
