//! Differential tests: the `DagLike`-generic scheduler paths against the
//! inherent `CompDag` paths and the retained reference implementations.
//!
//! The sharded search seeds each shard from a greedy baseline computed
//! directly on its `SubDagView`, so the generic `schedule_dag` entry points of
//! the greedy, Cilk and DFS schedulers must make exactly the same decisions as
//! the `CompDag` trait path. A full-graph induced view preserves node ids and
//! adjacency order, so every result — assignment, supersteps and order hint —
//! must be byte-identical across all three routes:
//!
//! `schedule_dag(&view)` ≡ `schedule(&dag)` ≡ `reference::*_reference(&dag)`.

use mbsp_dag::{DagLike, NodeId, SubDagView};
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::tiny_dataset;
use mbsp_model::Architecture;
use mbsp_sched::greedy::GreedyBspConfig;
use mbsp_sched::{
    assert_order_respects_precedence, reference, BspScheduler, CilkScheduler, DfsScheduler,
    GreedyBspScheduler,
};

fn arch(p: usize, l: f64) -> Architecture {
    Architecture::new(p, 1e9, 1.0, l)
}

fn full_view(dag: &mbsp_dag::CompDag) -> SubDagView<'_> {
    let all: Vec<NodeId> = dag.nodes().collect();
    let view = SubDagView::induced(dag, &all, format!("{}::full", dag.name()));
    assert_eq!(DagLike::num_nodes(&view), dag.num_nodes());
    view
}

#[test]
fn generic_greedy_on_full_view_matches_comp_dag_path_and_reference() {
    let mut cases = 0usize;
    for seed in 0..12u64 {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 2 + (seed as usize % 5),
                width: 2 + (seed as usize % 7),
                ..Default::default()
            },
            seed,
        );
        let view = full_view(&dag);
        for &(p, l) in &[(1usize, 0.0), (2, 5.0), (4, 10.0)] {
            let a = arch(p, l);
            let config = GreedyBspConfig::default();
            let scheduler = GreedyBspScheduler::with_config(config);
            let via_view = scheduler.schedule_dag(&view, &a);
            let via_dag = scheduler.schedule(&dag, &a);
            let oracle = reference::greedy_reference(&config, &dag, &a);
            assert_eq!(via_view.schedule, via_dag.schedule, "seed {seed} p {p}");
            assert_eq!(via_view.order, via_dag.order, "seed {seed} p {p}");
            assert_eq!(via_view.schedule, oracle.schedule, "seed {seed} p {p}");
            assert_eq!(via_view.order, oracle.order, "seed {seed} p {p}");
            assert_order_respects_precedence(&dag, &via_view.order);
            cases += 1;
        }
    }
    for inst in tiny_dataset(42) {
        let a = arch(4, 10.0);
        let config = GreedyBspConfig::default();
        let scheduler = GreedyBspScheduler::with_config(config);
        let view = full_view(&inst.dag);
        let via_view = scheduler.schedule_dag(&view, &a);
        let oracle = reference::greedy_reference(&config, &inst.dag, &a);
        assert_eq!(via_view.schedule, oracle.schedule, "{}", inst.name);
        assert_eq!(via_view.order, oracle.order, "{}", inst.name);
        cases += 1;
    }
    assert!(cases >= 40);
}

#[test]
fn generic_cilk_on_full_view_matches_comp_dag_path_and_reference() {
    for seed in 0..12u64 {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 3 + (seed as usize % 4),
                width: 2 + (seed as usize % 6),
                ..Default::default()
            },
            seed,
        );
        let view = full_view(&dag);
        for &p in &[1usize, 2, 4] {
            let a = arch(p, 10.0);
            let scheduler = CilkScheduler::with_seed(seed ^ 0xC11C);
            let via_view = scheduler.schedule_dag(&view, &a);
            let via_dag = scheduler.schedule(&dag, &a);
            let oracle = reference::cilk_reference(seed ^ 0xC11C, &dag, &a);
            assert_eq!(via_view.schedule, via_dag.schedule, "seed {seed} p {p}");
            assert_eq!(via_view.order, via_dag.order, "seed {seed} p {p}");
            assert_eq!(via_view.schedule, oracle.schedule, "seed {seed} p {p}");
            assert_eq!(via_view.order, oracle.order, "seed {seed} p {p}");
            assert_order_respects_precedence(&dag, &via_view.order);
        }
    }
}

#[test]
fn generic_dfs_on_full_view_matches_comp_dag_path_and_reference() {
    let a = Architecture::single_processor(100.0, 1.0);
    for seed in 0..12u64 {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 2 + (seed as usize % 5),
                width: 2 + (seed as usize % 6),
                ..Default::default()
            },
            1000 + seed,
        );
        let view = full_view(&dag);
        let scheduler = DfsScheduler::new();
        let via_view = scheduler.schedule_dag(&view, &a);
        let via_dag = scheduler.schedule(&dag, &a);
        let oracle = reference::dfs_reference(&dag);
        assert_eq!(via_view.schedule, via_dag.schedule, "seed {seed}");
        assert_eq!(via_view.order, via_dag.order, "seed {seed}");
        assert_eq!(via_view.schedule, oracle.schedule, "seed {seed}");
        assert_eq!(via_view.order, oracle.order, "seed {seed}");
        assert_order_respects_precedence(&dag, &via_view.order);
    }
}

#[test]
fn generic_greedy_respects_view_source_semantics_on_proper_subgraphs() {
    // On a proper sub-view the generic path must agree with scheduling the
    // materialised sub-DAG: ids differ from the parent, but the view's
    // adjacency is exactly the induced subgraph.
    let dag = random_layered_dag(
        &RandomDagConfig {
            layers: 6,
            width: 8,
            edge_probability: 0.4,
            ..Default::default()
        },
        0xFEED,
    );
    let half: Vec<NodeId> = dag.nodes().take(dag.num_nodes() / 2).collect();
    let view = SubDagView::induced(&dag, &half, "half");
    let a = arch(4, 10.0);
    let scheduler = GreedyBspScheduler::new();
    let via_view = scheduler.schedule_dag(&view, &a);

    // Materialise the same induced subgraph as a standalone CompDag. The
    // selection is an id-ordered prefix, so local ids line up.
    let weights: Vec<mbsp_dag::NodeWeights> = half
        .iter()
        .map(|&v| mbsp_dag::NodeWeights::new(dag.compute_weight(v), dag.memory_weight(v)))
        .collect();
    let mut edges = Vec::new();
    for &u in &half {
        for &v in dag.children(u) {
            if v.index() < half.len() {
                edges.push((u.index(), v.index()));
            }
        }
    }
    let sub = mbsp_dag::CompDag::from_edges("half_materialised", weights, &edges).unwrap();
    let via_sub = scheduler.schedule(&sub, &a);
    assert_eq!(via_view.schedule, via_sub.schedule);
    assert_eq!(via_view.order, via_sub.order);
}
