//! Differential tests: the scratch-based schedulers against the retained
//! pre-scratch reference implementations.
//!
//! The refactor onto reusable flat scratch buffers must not change a single
//! scheduling decision: for every seeded DAG, architecture and configuration,
//! the optimised greedy, Cilk and DFS schedulers must produce byte-identical
//! results (assignment, supersteps and order hint) to
//! [`mbsp_sched::reference`].

use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::tiny_dataset;
use mbsp_model::Architecture;
use mbsp_sched::greedy::GreedyBspConfig;
use mbsp_sched::{
    assert_order_respects_precedence, reference, BspScheduler, CilkScheduler, DfsScheduler,
    GreedyBspScheduler, SchedulerScratch,
};

fn arch(p: usize, l: f64) -> Architecture {
    Architecture::new(p, 1e9, 1.0, l)
}

#[test]
fn greedy_matches_reference_on_random_dags_and_datasets() {
    let mut scratch = SchedulerScratch::new();
    let mut cases = 0usize;
    for seed in 0..24 {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 2 + (seed as usize % 6),
                width: 2 + (seed as usize % 9),
                ..Default::default()
            },
            seed,
        );
        for &(p, l) in &[(1usize, 0.0), (2, 5.0), (4, 10.0)] {
            let a = arch(p, l);
            let config = GreedyBspConfig::default();
            let fast = GreedyBspScheduler::with_config(config).schedule_with_scratch(
                &dag,
                &a,
                &mut scratch,
            );
            let oracle = reference::greedy_reference(&config, &dag, &a);
            assert_eq!(fast.schedule, oracle.schedule, "seed {seed} p {p}");
            assert_eq!(fast.order, oracle.order, "seed {seed} p {p}");
            assert_order_respects_precedence(&dag, &fast.order);
            cases += 1;
        }
    }
    for inst in tiny_dataset(42) {
        let a = arch(4, 10.0);
        let config = GreedyBspConfig::default();
        let fast = GreedyBspScheduler::with_config(config).schedule_with_scratch(
            &inst.dag,
            &a,
            &mut scratch,
        );
        let oracle = reference::greedy_reference(&config, &inst.dag, &a);
        assert_eq!(fast.schedule, oracle.schedule, "{}", inst.name);
        assert_eq!(fast.order, oracle.order, "{}", inst.name);
        cases += 1;
    }
    assert!(cases >= 80);
}

#[test]
fn cilk_matches_reference_for_identical_seeds() {
    let mut scratch = SchedulerScratch::new();
    for seed in 0..20u64 {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 3 + (seed as usize % 4),
                width: 2 + (seed as usize % 7),
                ..Default::default()
            },
            seed,
        );
        for &p in &[1usize, 2, 4] {
            let a = arch(p, 10.0);
            let sched = CilkScheduler::with_seed(seed ^ 0xC11C);
            let fast = sched.schedule_with_scratch(&dag, &a, &mut scratch);
            let oracle = reference::cilk_reference(seed ^ 0xC11C, &dag, &a);
            assert_eq!(fast.schedule, oracle.schedule, "seed {seed} p {p}");
            assert_eq!(fast.order, oracle.order, "seed {seed} p {p}");
            assert_order_respects_precedence(&dag, &fast.order);
        }
    }
}

#[test]
fn dfs_matches_reference() {
    let mut scratch = SchedulerScratch::new();
    let a = Architecture::single_processor(100.0, 1.0);
    for seed in 0..20u64 {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 2 + (seed as usize % 5),
                width: 2 + (seed as usize % 6),
                ..Default::default()
            },
            1000 + seed,
        );
        let fast = DfsScheduler::new().schedule_with_scratch(&dag, &a, &mut scratch);
        let oracle = reference::dfs_reference(&dag);
        assert_eq!(fast.schedule, oracle.schedule, "seed {seed}");
        assert_eq!(fast.order, oracle.order, "seed {seed}");
        assert_order_respects_precedence(&dag, &fast.order);
    }
    for inst in tiny_dataset(7) {
        let fast = DfsScheduler::new().schedule_with_scratch(&inst.dag, &a, &mut scratch);
        let oracle = reference::dfs_reference(&inst.dag);
        assert_eq!(fast.schedule, oracle.schedule, "{}", inst.name);
        assert_eq!(fast.order, oracle.order, "{}", inst.name);
    }
}
