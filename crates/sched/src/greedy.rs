//! The BSPg-style greedy BSP scheduler (the paper's main baseline first stage).
//!
//! The scheduler builds the schedule superstep by superstep. Within a superstep it
//! repeatedly selects, among the *eligible* nodes (every parent either finished in
//! an earlier superstep, or already assigned to the same processor within the
//! current superstep), the node with the highest bottom-level priority, and places
//! it on the processor that minimises a weighted combination of
//!
//! * the processor's current compute load in this superstep (work balancing), and
//! * the communication volume caused by parents that live on other processors.
//!
//! A superstep is closed once every processor has accumulated at least the target
//! amount of work (`work_quantum`, by default proportional to the synchronisation
//! cost `L` so that barriers are amortised) or no eligible node remains.
//!
//! ## Scratch reuse
//!
//! The inner loop runs on [`SchedulerScratch`]: the ready list is pruned in
//! place, candidate/allowed buffers are reused across passes, the per-superstep
//! "assigned here" test reads the assignment array directly (no `Vec<Vec<bool>>`
//! per superstep), and the superstep close touches only the nodes assigned in
//! that superstep instead of sweeping all `V`. The pre-scratch implementation is
//! retained verbatim as [`crate::reference::greedy_reference`]; the differential
//! tests assert both produce byte-identical schedules.

use crate::{BspScheduler, BspSchedulingResult, SchedulerScratch};
use mbsp_dag::topo::bottom_levels_into;
use mbsp_dag::{CompDag, DagLike, NodeId};
use mbsp_model::{Architecture, BspSchedule, ProcId};

/// Tunable parameters of [`GreedyBspScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyBspConfig {
    /// Relative weight of the load-balancing term in the placement score.
    pub balance_weight: f64,
    /// Relative weight of the communication term in the placement score.
    pub comm_weight: f64,
    /// Target compute work per processor per superstep, as a multiple of `L`
    /// (clamped from below by the heaviest node weight). Larger values create fewer,
    /// longer supersteps.
    pub quantum_latency_factor: f64,
    /// Minimal work quantum used when `L = 0`.
    pub min_quantum: f64,
}

impl Default for GreedyBspConfig {
    fn default() -> Self {
        GreedyBspConfig {
            balance_weight: 1.0,
            comm_weight: 1.0,
            quantum_latency_factor: 2.0,
            min_quantum: 4.0,
        }
    }
}

/// Greedy BSP list scheduler with superstep formation (BSPg-style baseline).
#[derive(Debug, Clone, Default)]
pub struct GreedyBspScheduler {
    config: GreedyBspConfig,
}

impl GreedyBspScheduler {
    /// Creates a scheduler with the default configuration.
    pub fn new() -> Self {
        GreedyBspScheduler {
            config: GreedyBspConfig::default(),
        }
    }

    /// Creates a scheduler with an explicit configuration.
    pub fn with_config(config: GreedyBspConfig) -> Self {
        GreedyBspScheduler { config }
    }

    /// Generic counterpart of [`BspScheduler::schedule`]: runs the greedy list
    /// scheduler on any [`DagLike`] graph, including the zero-copy
    /// [`mbsp_dag::SubDagView`]. On a `CompDag` it is byte-identical to the trait
    /// path (which delegates here).
    pub fn schedule_dag<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
    ) -> BspSchedulingResult {
        self.schedule_dag_with_scratch(dag, arch, &mut SchedulerScratch::default())
    }

    /// Like [`GreedyBspScheduler::schedule_dag`], reusing the caller's scratch
    /// buffers.
    pub fn schedule_dag_with_scratch<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
        scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        let n = dag.num_nodes();
        let p = arch.processors;
        scratch.topo.rebuild(dag);
        bottom_levels_into(dag, &scratch.topo, &mut scratch.priorities);
        let priorities = &scratch.priorities;

        // Work quantum per processor per superstep.
        let max_node_weight = dag
            .nodes()
            .map(|v| dag.compute_weight(v))
            .fold(0.0, f64::max);
        let quantum = (arch.latency * self.config.quantum_latency_factor)
            .max(self.config.min_quantum)
            .max(max_node_weight);

        // Scheduling state. The assignment array doubles as the per-superstep
        // "assigned here" test: `assignment[u] == Some((q, current_superstep))`
        // is exactly the predicate the former `Vec<Vec<bool>>` scratch answered.
        let mut assignment: Vec<Option<(ProcId, usize)>> = vec![None; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        scratch.remaining_parents.clear();
        scratch
            .remaining_parents
            .extend((0..n).map(|i| dag.in_degree(NodeId::new(i)) as u32));
        let mut scheduled = 0usize;

        // Sources are "scheduled" implicitly: they are inputs that live in slow
        // memory. We place them on processor 0, superstep 0 so that the assignment
        // covers every node, but they carry no compute work.
        scratch.ready.clear();
        for v in dag.nodes() {
            if dag.is_source(v) {
                assignment[v.index()] = Some((ProcId::new(0), 0));
                order.push(v);
                scheduled += 1;
                for c in dag.children(v) {
                    scratch.remaining_parents[c.index()] -= 1;
                    if scratch.remaining_parents[c.index()] == 0 {
                        scratch.ready.push(c);
                    }
                }
            } else if dag.in_degree(v) == 0 {
                scratch.ready.push(v);
            }
        }

        let mut superstep = 0usize;
        // `finished_before[v]` is true once v was assigned in a superstep strictly
        // before the current one (its value can have been communicated).
        scratch.finished_before.clear();
        scratch
            .finished_before
            .extend((0..n).map(|i| assignment[i].is_some()));
        scratch.load.clear();
        scratch.load.resize(p, 0.0);

        while scheduled < n {
            superstep += 1;
            scratch.load.fill(0.0);
            scratch.newly_assigned.clear();
            let mut progressed = true;

            while progressed {
                progressed = false;
                // Candidate selection: eligible ready nodes sorted by priority.
                // Assigned nodes are compacted out of the ready list first, so
                // the list never accumulates stale entries.
                {
                    let assignment = &assignment;
                    scratch.ready.retain(|&v| assignment[v.index()].is_none());
                }
                scratch.candidates.clear();
                scratch.candidates.extend_from_slice(&scratch.ready);
                scratch.candidates.sort_by(|&a, &b| {
                    priorities[b.index()]
                        .partial_cmp(&priorities[a.index()])
                        .unwrap()
                        .then(a.cmp(&b))
                });

                for ci in 0..scratch.candidates.len() {
                    let v = scratch.candidates[ci];
                    // Determine which processors may execute v in this superstep:
                    // every parent must be finished before this superstep, or be
                    // assigned to that same processor within this superstep.
                    scratch.allowed.clear();
                    'proc: for pi in 0..p {
                        for u in dag.parents(v) {
                            let ok = scratch.finished_before[u.index()]
                                || assignment[u.index()] == Some((ProcId::new(pi), superstep));
                            if !ok {
                                continue 'proc;
                            }
                        }
                        scratch.allowed.push(ProcId::new(pi));
                    }
                    if scratch.allowed.is_empty() {
                        continue;
                    }
                    // Skip nodes if every allowed processor is already full, unless
                    // nothing has been placed in this superstep yet (guarantee
                    // progress).
                    let someone_below_quantum = scratch
                        .allowed
                        .iter()
                        .any(|&q| scratch.load[q.index()] < quantum);
                    let superstep_empty = scratch.load.iter().all(|&l| l == 0.0);
                    if !someone_below_quantum && !superstep_empty {
                        continue;
                    }

                    // Placement score: balance + communication.
                    let mut best: Option<(f64, ProcId)> = None;
                    for &q in &scratch.allowed {
                        let comm: f64 = dag
                            .parents(v)
                            .filter(|&u| {
                                let (pu, _) = assignment[u.index()].expect("parent scheduled");
                                pu != q && !dag.is_source(u)
                            })
                            .map(|u| dag.memory_weight(u) * arch.g)
                            .sum();
                        let score = self.config.balance_weight * scratch.load[q.index()]
                            + self.config.comm_weight * comm;
                        if best.map_or(true, |(s, _)| score < s - 1e-12) {
                            best = Some((score, q));
                        }
                    }
                    let (_, chosen) = best.expect("allowed is non-empty");
                    if scratch.load[chosen.index()] >= quantum && !superstep_empty {
                        continue;
                    }

                    // Commit the assignment.
                    assignment[v.index()] = Some((chosen, superstep));
                    scratch.load[chosen.index()] += dag.compute_weight(v);
                    scratch.newly_assigned.push(v);
                    order.push(v);
                    scheduled += 1;
                    progressed = true;
                    for c in dag.children(v) {
                        scratch.remaining_parents[c.index()] -= 1;
                        if scratch.remaining_parents[c.index()] == 0 {
                            scratch.ready.push(c);
                        }
                    }
                }
            }
            // Close the superstep: everything assigned in it is now visible to
            // other processors (O(assigned) instead of an O(V) sweep).
            for i in 0..scratch.newly_assigned.len() {
                scratch.finished_before[scratch.newly_assigned[i].index()] = true;
            }
        }

        let assignment: Vec<(ProcId, usize)> = assignment
            .into_iter()
            .map(|a| a.expect("all nodes scheduled"))
            .collect();
        let mut schedule = BspSchedule::new(p, assignment);
        schedule.compact_supersteps();
        BspSchedulingResult { schedule, order }
    }
}

impl BspScheduler for GreedyBspScheduler {
    fn name(&self) -> &'static str {
        "greedy-bsp"
    }

    fn schedule(&self, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult {
        self.schedule_dag(dag, arch)
    }

    fn schedule_with_scratch(
        &self,
        dag: &CompDag,
        arch: &Architecture,
        scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        self.schedule_dag_with_scratch(dag, arch, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_order_respects_precedence;
    use mbsp_dag::DagBuilder;
    use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
    use mbsp_gen::tiny_dataset;

    fn arch(p: usize, l: f64) -> Architecture {
        Architecture::new(p, 1e9, 1.0, l)
    }

    #[test]
    fn schedules_are_valid_on_the_tiny_dataset() {
        let sched = GreedyBspScheduler::new();
        for inst in tiny_dataset(42) {
            let a = arch(4, 10.0);
            let result = sched.schedule(&inst.dag, &a);
            result.schedule.validate(&inst.dag).unwrap_or_else(|e| {
                panic!("{}: invalid BSP schedule: {e}", inst.name);
            });
            assert_eq!(result.order.len(), inst.dag.num_nodes());
        }
    }

    #[test]
    fn order_hint_respects_precedence() {
        let sched = GreedyBspScheduler::new();
        let dag = random_layered_dag(&RandomDagConfig::default(), 5);
        let a = arch(4, 10.0);
        let result = sched.schedule(&dag, &a);
        assert_order_respects_precedence(&dag, &result.order);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let sched = GreedyBspScheduler::new();
        let a = arch(4, 10.0);
        let mut scratch = SchedulerScratch::new();
        for seed in 0..6 {
            let dag = random_layered_dag(&RandomDagConfig::default(), seed);
            let reused = sched.schedule_with_scratch(&dag, &a, &mut scratch);
            let fresh = sched.schedule(&dag, &a);
            assert_eq!(reused.schedule, fresh.schedule, "seed {seed}");
            assert_eq!(reused.order, fresh.order, "seed {seed}");
        }
    }

    #[test]
    fn parallel_chains_are_distributed() {
        // Two long independent chains and two processors: the scheduler should use
        // both processors.
        let mut b = DagBuilder::new("chains");
        let s = b.add_labeled_node(0.0, 1.0, "src").unwrap();
        let c1 = b.add_unit_nodes(20).unwrap();
        let c2 = b.add_unit_nodes(20).unwrap();
        b.add_edge(s, c1[0]).unwrap();
        b.add_edge(s, c2[0]).unwrap();
        b.add_chain(&c1).unwrap();
        b.add_chain(&c2).unwrap();
        let dag = b.build();
        let a = arch(2, 5.0);
        let result = GreedyBspScheduler::new().schedule(&dag, &a);
        result.schedule.validate(&dag).unwrap();
        let work = result.schedule.work_per_processor(&dag);
        assert!(
            work[0] > 0.0 && work[1] > 0.0,
            "both processors should get work: {work:?}"
        );
        // The chains should not be interleaved across processors: few cross edges.
        assert!(result.schedule.cross_processor_edges(&dag) <= 4);
    }

    #[test]
    fn single_processor_degenerates_to_one_superstep_per_quantum() {
        let mut b = DagBuilder::new("chain");
        let s = b.add_labeled_node(0.0, 1.0, "src").unwrap();
        let c = b.add_unit_nodes(10).unwrap();
        b.add_edge(s, c[0]).unwrap();
        b.add_chain(&c).unwrap();
        let dag = b.build();
        let a = arch(1, 100.0);
        let result = GreedyBspScheduler::new().schedule(&dag, &a);
        result.schedule.validate(&dag).unwrap();
        // With a huge L the quantum is large and everything fits in few supersteps.
        assert!(result.schedule.num_supersteps() <= 2);
    }

    #[test]
    fn larger_latency_means_fewer_supersteps() {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 6,
                width: 6,
                ..Default::default()
            },
            9,
        );
        let small_l = GreedyBspScheduler::new().schedule(&dag, &arch(4, 1.0));
        let large_l = GreedyBspScheduler::new().schedule(&dag, &arch(4, 50.0));
        assert!(
            large_l.schedule.num_supersteps() <= small_l.schedule.num_supersteps(),
            "L=50 should not need more supersteps than L=1"
        );
    }
}
