//! The BSPg-style greedy BSP scheduler (the paper's main baseline first stage).
//!
//! The scheduler builds the schedule superstep by superstep. Within a superstep it
//! repeatedly selects, among the *eligible* nodes (every parent either finished in
//! an earlier superstep, or already assigned to the same processor within the
//! current superstep), the node with the highest bottom-level priority, and places
//! it on the processor that minimises a weighted combination of
//!
//! * the processor's current compute load in this superstep (work balancing), and
//! * the communication volume caused by parents that live on other processors.
//!
//! A superstep is closed once every processor has accumulated at least the target
//! amount of work (`work_quantum`, by default proportional to the synchronisation
//! cost `L` so that barriers are amortised) or no eligible node remains.

use crate::{BspScheduler, BspSchedulingResult};
use mbsp_dag::topo::bottom_levels;
use mbsp_dag::{CompDag, NodeId};
use mbsp_model::{Architecture, BspSchedule, ProcId};

/// Tunable parameters of [`GreedyBspScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyBspConfig {
    /// Relative weight of the load-balancing term in the placement score.
    pub balance_weight: f64,
    /// Relative weight of the communication term in the placement score.
    pub comm_weight: f64,
    /// Target compute work per processor per superstep, as a multiple of `L`
    /// (clamped from below by the heaviest node weight). Larger values create fewer,
    /// longer supersteps.
    pub quantum_latency_factor: f64,
    /// Minimal work quantum used when `L = 0`.
    pub min_quantum: f64,
}

impl Default for GreedyBspConfig {
    fn default() -> Self {
        GreedyBspConfig {
            balance_weight: 1.0,
            comm_weight: 1.0,
            quantum_latency_factor: 2.0,
            min_quantum: 4.0,
        }
    }
}

/// Greedy BSP list scheduler with superstep formation (BSPg-style baseline).
#[derive(Debug, Clone, Default)]
pub struct GreedyBspScheduler {
    config: GreedyBspConfig,
}

impl GreedyBspScheduler {
    /// Creates a scheduler with the default configuration.
    pub fn new() -> Self {
        GreedyBspScheduler {
            config: GreedyBspConfig::default(),
        }
    }

    /// Creates a scheduler with an explicit configuration.
    pub fn with_config(config: GreedyBspConfig) -> Self {
        GreedyBspScheduler { config }
    }
}

impl BspScheduler for GreedyBspScheduler {
    fn name(&self) -> &'static str {
        "greedy-bsp"
    }

    fn schedule(&self, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult {
        let n = dag.num_nodes();
        let p = arch.processors;
        let priorities = bottom_levels(dag);

        // Work quantum per processor per superstep.
        let max_node_weight = dag
            .nodes()
            .map(|v| dag.compute_weight(v))
            .fold(0.0, f64::max);
        let quantum = (arch.latency * self.config.quantum_latency_factor)
            .max(self.config.min_quantum)
            .max(max_node_weight);

        // Scheduling state.
        let mut assignment: Vec<Option<(ProcId, usize)>> = vec![None; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut remaining_parents: Vec<usize> =
            (0..n).map(|i| dag.in_degree(NodeId::new(i))).collect();
        let mut scheduled = 0usize;

        // Sources are "scheduled" implicitly: they are inputs that live in slow
        // memory. We place them on processor 0, superstep 0 so that the assignment
        // covers every node, but they carry no compute work.
        let mut ready: Vec<NodeId> = Vec::new();
        for v in dag.nodes() {
            if dag.is_source(v) {
                assignment[v.index()] = Some((ProcId::new(0), 0));
                order.push(v);
                scheduled += 1;
                for &c in dag.children(v) {
                    remaining_parents[c.index()] -= 1;
                    if remaining_parents[c.index()] == 0 {
                        ready.push(c);
                    }
                }
            } else if dag.in_degree(v) == 0 {
                ready.push(v);
            }
        }

        let mut superstep = 0usize;
        // `finished_before[v]` is true once v was assigned in a superstep strictly
        // before the current one (its value can have been communicated).
        let mut finished_before: Vec<bool> = (0..n).map(|i| assignment[i].is_some()).collect();

        while scheduled < n {
            superstep += 1;
            let mut load = vec![0.0f64; p];
            // Nodes assigned in *this* superstep, per processor, to allow same-proc
            // chains within a superstep.
            let mut assigned_here: Vec<Vec<bool>> = vec![vec![false; n]; p];
            let mut progressed = true;

            while progressed {
                progressed = false;
                // Candidate selection: eligible ready nodes sorted by priority.
                let mut candidates: Vec<NodeId> = ready
                    .iter()
                    .copied()
                    .filter(|&v| assignment[v.index()].is_none())
                    .collect();
                candidates.sort_by(|&a, &b| {
                    priorities[b.index()]
                        .partial_cmp(&priorities[a.index()])
                        .unwrap()
                        .then(a.cmp(&b))
                });

                for v in candidates {
                    // Determine which processors may execute v in this superstep:
                    // every parent must be finished before this superstep, or be
                    // assigned to that same processor within this superstep.
                    let mut allowed: Vec<ProcId> = Vec::new();
                    'proc: for pi in 0..p {
                        for &u in dag.parents(v) {
                            let ok = finished_before[u.index()] || assigned_here[pi][u.index()];
                            if !ok {
                                continue 'proc;
                            }
                        }
                        allowed.push(ProcId::new(pi));
                    }
                    if allowed.is_empty() {
                        continue;
                    }
                    // Skip nodes if every allowed processor is already full, unless
                    // nothing has been placed in this superstep yet (guarantee
                    // progress).
                    let someone_below_quantum = allowed.iter().any(|&q| load[q.index()] < quantum);
                    let superstep_empty = load.iter().all(|&l| l == 0.0);
                    if !someone_below_quantum && !superstep_empty {
                        continue;
                    }

                    // Placement score: balance + communication.
                    let mut best: Option<(f64, ProcId)> = None;
                    for &q in &allowed {
                        let comm: f64 = dag
                            .parents(v)
                            .iter()
                            .filter(|&&u| {
                                let (pu, _) = assignment[u.index()].expect("parent scheduled");
                                pu != q && !dag.is_source(u)
                            })
                            .map(|&u| dag.memory_weight(u) * arch.g)
                            .sum();
                        let score = self.config.balance_weight * load[q.index()]
                            + self.config.comm_weight * comm;
                        if best.map_or(true, |(s, _)| score < s - 1e-12) {
                            best = Some((score, q));
                        }
                    }
                    let (_, chosen) = best.expect("allowed is non-empty");
                    if load[chosen.index()] >= quantum && !superstep_empty {
                        continue;
                    }

                    // Commit the assignment.
                    assignment[v.index()] = Some((chosen, superstep));
                    assigned_here[chosen.index()][v.index()] = true;
                    load[chosen.index()] += dag.compute_weight(v);
                    order.push(v);
                    scheduled += 1;
                    progressed = true;
                    for &c in dag.children(v) {
                        remaining_parents[c.index()] -= 1;
                        if remaining_parents[c.index()] == 0 {
                            ready.push(c);
                        }
                    }
                }
            }
            // Close the superstep: everything assigned so far is now visible to
            // other processors.
            for v in dag.nodes() {
                if assignment[v.index()].is_some() {
                    finished_before[v.index()] = true;
                }
            }
        }

        let assignment: Vec<(ProcId, usize)> = assignment
            .into_iter()
            .map(|a| a.expect("all nodes scheduled"))
            .collect();
        let mut schedule = BspSchedule::new(p, assignment);
        schedule.compact_supersteps();
        BspSchedulingResult { schedule, order }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_dag::DagBuilder;
    use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
    use mbsp_gen::tiny_dataset;

    fn arch(p: usize, l: f64) -> Architecture {
        Architecture::new(p, 1e9, 1.0, l)
    }

    #[test]
    fn schedules_are_valid_on_the_tiny_dataset() {
        let sched = GreedyBspScheduler::new();
        for inst in tiny_dataset(42) {
            let a = arch(4, 10.0);
            let result = sched.schedule(&inst.dag, &a);
            result.schedule.validate(&inst.dag).unwrap_or_else(|e| {
                panic!("{}: invalid BSP schedule: {e}", inst.name);
            });
            assert_eq!(result.order.len(), inst.dag.num_nodes());
        }
    }

    #[test]
    fn order_hint_respects_precedence() {
        let sched = GreedyBspScheduler::new();
        let dag = random_layered_dag(&RandomDagConfig::default(), 5);
        let a = arch(4, 10.0);
        let result = sched.schedule(&dag, &a);
        let pos: std::collections::HashMap<_, _> = result
            .order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        for (u, v) in dag.edges() {
            assert!(pos[&u] < pos[&v], "order hint violates edge {u}->{v}");
        }
    }

    #[test]
    fn parallel_chains_are_distributed() {
        // Two long independent chains and two processors: the scheduler should use
        // both processors.
        let mut b = DagBuilder::new("chains");
        let s = b.add_labeled_node(0.0, 1.0, "src").unwrap();
        let c1 = b.add_unit_nodes(20).unwrap();
        let c2 = b.add_unit_nodes(20).unwrap();
        b.add_edge(s, c1[0]).unwrap();
        b.add_edge(s, c2[0]).unwrap();
        b.add_chain(&c1).unwrap();
        b.add_chain(&c2).unwrap();
        let dag = b.build();
        let a = arch(2, 5.0);
        let result = GreedyBspScheduler::new().schedule(&dag, &a);
        result.schedule.validate(&dag).unwrap();
        let work = result.schedule.work_per_processor(&dag);
        assert!(
            work[0] > 0.0 && work[1] > 0.0,
            "both processors should get work: {work:?}"
        );
        // The chains should not be interleaved across processors: few cross edges.
        assert!(result.schedule.cross_processor_edges(&dag) <= 4);
    }

    #[test]
    fn single_processor_degenerates_to_one_superstep_per_quantum() {
        let mut b = DagBuilder::new("chain");
        let s = b.add_labeled_node(0.0, 1.0, "src").unwrap();
        let c = b.add_unit_nodes(10).unwrap();
        b.add_edge(s, c[0]).unwrap();
        b.add_chain(&c).unwrap();
        let dag = b.build();
        let a = arch(1, 100.0);
        let result = GreedyBspScheduler::new().schedule(&dag, &a);
        result.schedule.validate(&dag).unwrap();
        // With a huge L the quantum is large and everything fits in few supersteps.
        assert!(result.schedule.num_supersteps() <= 2);
    }

    #[test]
    fn larger_latency_means_fewer_supersteps() {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 6,
                width: 6,
                ..Default::default()
            },
            9,
        );
        let small_l = GreedyBspScheduler::new().schedule(&dag, &arch(4, 1.0));
        let large_l = GreedyBspScheduler::new().schedule(&dag, &arch(4, 50.0));
        assert!(
            large_l.schedule.num_supersteps() <= small_l.schedule.num_supersteps(),
            "L=50 should not need more supersteps than L=1"
        );
    }
}
