//! Cilk-style work-stealing scheduler simulation.
//!
//! The paper's "practical" baseline pairs the Cilk work-stealing scheduler of
//! Blumofe & Leiserson with LRU cache eviction. This module simulates a randomised
//! work-stealing execution of the DAG on `P` workers in virtual time: every worker
//! owns a deque of ready tasks, pushes children that become ready when it finishes a
//! node, and steals from the top of a random victim's deque when idle. The simulated
//! trace (which worker executed which node, and in which order) is then folded into
//! a BSP schedule: a node starts a new superstep whenever it consumes a value
//! produced on another processor in the current superstep.
//!
//! The simulation and the fold run entirely on [`SchedulerScratch`] buffers (the
//! RNG draw sequence is untouched, so results are bit-identical to the
//! pre-scratch implementation retained as [`crate::reference::cilk_reference`]).

use crate::{BspScheduler, BspSchedulingResult, SchedulerScratch};
use mbsp_dag::{CompDag, DagLike, NodeId};
use mbsp_model::{Architecture, BspSchedule, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Work-stealing scheduler simulation (Cilk-style baseline).
#[derive(Debug, Clone)]
pub struct CilkScheduler {
    seed: u64,
}

impl Default for CilkScheduler {
    fn default() -> Self {
        CilkScheduler { seed: 0xC11C }
    }
}

impl CilkScheduler {
    /// Creates a scheduler with the default seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheduler with an explicit seed for the random victim selection.
    pub fn with_seed(seed: u64) -> Self {
        CilkScheduler { seed }
    }

    /// Simulates the work-stealing execution into the scratch buffers: per node,
    /// the worker that executed it (`scratch.owner`) and the execution order
    /// (`scratch.completion_order`, a permutation of the non-source nodes in
    /// completion order).
    fn simulate<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        processors: usize,
        scratch: &mut SchedulerScratch,
    ) {
        let n = dag.num_nodes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        scratch.remaining_parents.clear();
        scratch
            .remaining_parents
            .extend((0..n).map(|i| dag.in_degree(NodeId::new(i)) as u32));
        scratch.owner.clear();
        scratch.owner.resize(n, ProcId::new(0));
        scratch.deques.resize(processors, Default::default());
        for d in &mut scratch.deques {
            d.clear();
        }

        // Seed the deques with the children of the sources that become ready, spread
        // round-robin over the workers (sources themselves are inputs).
        scratch.ready.clear();
        for v in dag.source_nodes() {
            for c in dag.children(v) {
                scratch.remaining_parents[c.index()] -= 1;
                if scratch.remaining_parents[c.index()] == 0 {
                    scratch.ready.push(c);
                }
            }
        }
        scratch.ready.sort_unstable();
        scratch.ready.dedup();
        for (i, &v) in scratch.ready.iter().enumerate() {
            scratch.deques[i % processors].push_back(v);
        }

        // Event-driven simulation in virtual time: each worker has a time at which
        // it becomes idle; the earliest idle worker acts next.
        scratch.worker_time.clear();
        scratch.worker_time.resize(processors, 0.0);
        scratch.completion_order.clear();
        scratch.executed.clear();
        scratch.executed.resize(n, false);
        let non_source_count = dag.nodes().filter(|&v| !dag.is_source(v)).count();

        while scratch.completion_order.len() < non_source_count {
            // Pick the worker with the smallest current time (ties: lowest index).
            let w = (0..processors)
                .min_by(|&a, &b| {
                    scratch.worker_time[a]
                        .partial_cmp(&scratch.worker_time[b])
                        .unwrap()
                })
                .unwrap();
            // Take own work from the bottom of the deque, or steal from the top of a
            // random victim.
            let task = if let Some(t) = scratch.deques[w].pop_back() {
                Some(t)
            } else {
                let mut stolen = None;
                // Try a few random victims, then scan everyone (deterministic bound).
                for _ in 0..processors {
                    let victim = rng.gen_range(0..processors);
                    if victim != w {
                        if let Some(t) = scratch.deques[victim].pop_front() {
                            stolen = Some(t);
                            break;
                        }
                    }
                }
                if stolen.is_none() {
                    for victim in 0..processors {
                        if victim != w {
                            if let Some(t) = scratch.deques[victim].pop_front() {
                                stolen = Some(t);
                                break;
                            }
                        }
                    }
                }
                stolen
            };
            match task {
                Some(v) => {
                    debug_assert!(!scratch.executed[v.index()]);
                    scratch.executed[v.index()] = true;
                    scratch.owner[v.index()] = ProcId::new(w);
                    scratch.worker_time[w] += dag.compute_weight(v).max(f64::MIN_POSITIVE);
                    scratch.completion_order.push(v);
                    // Newly ready children go to this worker's deque (depth-first).
                    for c in dag.children(v) {
                        scratch.remaining_parents[c.index()] -= 1;
                        if scratch.remaining_parents[c.index()] == 0 {
                            scratch.deques[w].push_back(c);
                        }
                    }
                }
                None => {
                    // Nothing to steal right now: advance this worker's clock past
                    // the next busy worker so someone else can produce work.
                    let next_busy = scratch
                        .worker_time
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != w)
                        .map(|(_, &t)| t)
                        .fold(f64::INFINITY, f64::min);
                    scratch.worker_time[w] = if next_busy.is_finite() {
                        next_busy + 1e-6
                    } else {
                        scratch.worker_time[w] + 1.0
                    };
                }
            }
        }
    }

    /// Generic counterpart of [`BspScheduler::schedule`]: simulates the
    /// work-stealing execution on any [`DagLike`] graph, including the zero-copy
    /// [`mbsp_dag::SubDagView`]. On a `CompDag` it is byte-identical to the trait
    /// path (which delegates here) — the RNG draw sequence does not depend on the
    /// graph representation.
    pub fn schedule_dag<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
    ) -> BspSchedulingResult {
        self.schedule_dag_with_scratch(dag, arch, &mut SchedulerScratch::default())
    }

    /// Like [`CilkScheduler::schedule_dag`], reusing the caller's scratch buffers.
    pub fn schedule_dag_with_scratch<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
        scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        let p = arch.processors;
        self.simulate(dag, p, scratch);
        let n = dag.num_nodes();

        // Fold the trace into supersteps: a node's superstep is at least one more
        // than the superstep of any parent on a different processor, at least the
        // superstep of any parent on the same processor, and at least the superstep
        // of the previous node executed by the same worker (the trace order must
        // stay realisable).
        scratch.superstep_of.clear();
        scratch.superstep_of.resize(n, 0);
        scratch.last_step_of_worker.clear();
        scratch.last_step_of_worker.resize(p, 0);
        let mut assignment: Vec<(ProcId, usize)> = vec![(ProcId::new(0), 0); n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);

        // Sources first: processor 0, superstep 0.
        for v in dag.source_nodes() {
            assignment[v.index()] = (ProcId::new(0), 0);
            order.push(v);
        }
        for i in 0..scratch.completion_order.len() {
            let v = scratch.completion_order[i];
            let w = scratch.owner[v.index()];
            let mut s = scratch.last_step_of_worker[w.index()];
            for u in dag.parents(v) {
                if dag.is_source(u) {
                    continue;
                }
                let su = scratch.superstep_of[u.index()];
                let needed = if scratch.owner[u.index()] == w {
                    su
                } else {
                    su + 1
                };
                s = s.max(needed);
            }
            scratch.superstep_of[v.index()] = s;
            scratch.last_step_of_worker[w.index()] = s;
            assignment[v.index()] = (w, s);
            order.push(v);
        }

        // Sources must precede their children: with cross-processor children this is
        // automatic (superstep >= 0 + 1 is not required for sources since they are
        // loaded from slow memory, not communicated), but the BSP validity check
        // requires a strictly earlier superstep for cross-processor edges. Shift all
        // non-source nodes by one superstep to leave superstep 0 to the sources.
        for v in dag.nodes() {
            if !dag.is_source(v) {
                assignment[v.index()].1 += 1;
            }
        }

        let mut schedule = BspSchedule::new(p, assignment);
        schedule.compact_supersteps();
        BspSchedulingResult { schedule, order }
    }
}

impl BspScheduler for CilkScheduler {
    fn name(&self) -> &'static str {
        "cilk-work-stealing"
    }

    fn schedule(&self, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult {
        self.schedule_dag(dag, arch)
    }

    fn schedule_with_scratch(
        &self,
        dag: &CompDag,
        arch: &Architecture,
        scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        self.schedule_dag_with_scratch(dag, arch, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_order_respects_precedence;
    use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
    use mbsp_gen::tiny_dataset;

    fn arch(p: usize) -> Architecture {
        Architecture::new(p, 1e9, 1.0, 10.0)
    }

    #[test]
    fn produces_valid_schedules_on_the_tiny_dataset() {
        let sched = CilkScheduler::new();
        for inst in tiny_dataset(42) {
            let result = sched.schedule(&inst.dag, &arch(4));
            result
                .schedule
                .validate(&inst.dag)
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
            assert_eq!(result.order.len(), inst.dag.num_nodes());
        }
    }

    #[test]
    fn all_workers_receive_work_on_wide_dags() {
        let dag = random_layered_dag(
            &RandomDagConfig {
                layers: 6,
                width: 16,
                ..Default::default()
            },
            3,
        );
        let result = CilkScheduler::new().schedule(&dag, &arch(4));
        result.schedule.validate(&dag).unwrap();
        let work = result.schedule.work_per_processor(&dag);
        assert!(
            work.iter().all(|&w| w > 0.0),
            "all workers should execute something: {work:?}"
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let dag = random_layered_dag(&RandomDagConfig::default(), 7);
        let a = CilkScheduler::with_seed(5).schedule(&dag, &arch(3));
        let b = CilkScheduler::with_seed(5).schedule(&dag, &arch(3));
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.order, b.order);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let a = arch(3);
        let mut scratch = SchedulerScratch::new();
        for seed in 0..5 {
            let dag = random_layered_dag(&RandomDagConfig::default(), seed);
            let sched = CilkScheduler::with_seed(seed ^ 0xA5);
            let reused = sched.schedule_with_scratch(&dag, &a, &mut scratch);
            let fresh = sched.schedule(&dag, &a);
            assert_eq!(reused.schedule, fresh.schedule, "seed {seed}");
            assert_eq!(reused.order, fresh.order, "seed {seed}");
        }
    }

    #[test]
    fn single_worker_executes_everything() {
        let dag = random_layered_dag(&RandomDagConfig::default(), 2);
        let result = CilkScheduler::new().schedule(&dag, &arch(1));
        result.schedule.validate(&dag).unwrap();
        let work = result.schedule.work_per_processor(&dag);
        assert_eq!(work.len(), 1);
        assert!(work[0] > 0.0);
    }

    #[test]
    fn order_hint_is_a_valid_topological_order() {
        let dag = random_layered_dag(&RandomDagConfig::default(), 4);
        let result = CilkScheduler::new().schedule(&dag, &arch(4));
        assert_order_respects_precedence(&dag, &result.order);
    }
}
