//! Single-processor depth-first scheduler.
//!
//! The paper's red–blue pebbling experiment (`P = 1`) uses a DFS ordering of the DAG
//! as the first stage of the two-stage baseline, combined with the clairvoyant cache
//! eviction policy. This scheduler assigns every node to processor 0 in a single
//! superstep and provides the depth-first topological order as the ordering hint
//! (which the BSP→MBSP conversion uses as the compute order).

use crate::{BspScheduler, BspSchedulingResult};
use mbsp_dag::topo::dfs_topological_order;
use mbsp_dag::CompDag;
use mbsp_model::{Architecture, BspSchedule, ProcId};

/// Depth-first single-processor scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct DfsScheduler;

impl DfsScheduler {
    /// Creates a new DFS scheduler.
    pub fn new() -> Self {
        DfsScheduler
    }
}

impl BspScheduler for DfsScheduler {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn schedule(&self, dag: &CompDag, _arch: &Architecture) -> BspSchedulingResult {
        let order = dfs_topological_order(dag);
        let assignment = vec![(ProcId::new(0), 0usize); dag.num_nodes()];
        BspSchedulingResult {
            schedule: BspSchedule::new(1, assignment),
            order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_gen::tiny_dataset;

    #[test]
    fn dfs_schedule_is_valid_and_sequential() {
        let arch = Architecture::single_processor(100.0, 1.0);
        for inst in tiny_dataset(1) {
            let result = DfsScheduler::new().schedule(&inst.dag, &arch);
            result.schedule.validate(&inst.dag).unwrap();
            assert_eq!(result.schedule.num_supersteps(), 1);
            assert_eq!(result.order.len(), inst.dag.num_nodes());
            // The order hint is a topological order.
            let pos: std::collections::HashMap<_, _> = result
                .order
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i))
                .collect();
            for (u, v) in inst.dag.edges() {
                assert!(pos[&u] < pos[&v]);
            }
        }
    }
}
