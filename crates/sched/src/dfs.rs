//! Single-processor depth-first scheduler.
//!
//! The paper's red–blue pebbling experiment (`P = 1`) uses a DFS ordering of the DAG
//! as the first stage of the two-stage baseline, combined with the clairvoyant cache
//! eviction policy. This scheduler assigns every node to processor 0 in a single
//! superstep and provides the depth-first topological order as the ordering hint
//! (which the BSP→MBSP conversion uses as the compute order). The order is computed
//! on the reusable [`SchedulerScratch`] buffers; the pre-scratch implementation is
//! retained as [`crate::reference::dfs_reference`].

use crate::{BspScheduler, BspSchedulingResult, SchedulerScratch};
use mbsp_dag::topo::dfs_topological_order_into;
use mbsp_dag::{CompDag, DagLike};
use mbsp_model::{Architecture, BspSchedule, ProcId};

/// Depth-first single-processor scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct DfsScheduler;

impl DfsScheduler {
    /// Creates a new DFS scheduler.
    pub fn new() -> Self {
        DfsScheduler
    }

    /// Generic counterpart of [`BspScheduler::schedule`]: computes the
    /// single-processor DFS schedule on any [`DagLike`] graph, including the
    /// zero-copy [`mbsp_dag::SubDagView`].
    pub fn schedule_dag<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        arch: &Architecture,
    ) -> BspSchedulingResult {
        self.schedule_dag_with_scratch(dag, arch, &mut SchedulerScratch::default())
    }

    /// Like [`DfsScheduler::schedule_dag`], reusing the caller's scratch buffers.
    pub fn schedule_dag_with_scratch<D: DagLike + ?Sized>(
        &self,
        dag: &D,
        _arch: &Architecture,
        scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        let mut order = Vec::new();
        dfs_topological_order_into(dag, &mut order, &mut scratch.dfs);
        let assignment = vec![(ProcId::new(0), 0usize); dag.num_nodes()];
        BspSchedulingResult {
            schedule: BspSchedule::new(1, assignment),
            order,
        }
    }
}

impl BspScheduler for DfsScheduler {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn schedule(&self, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult {
        self.schedule_dag(dag, arch)
    }

    fn schedule_with_scratch(
        &self,
        dag: &CompDag,
        arch: &Architecture,
        scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        self.schedule_dag_with_scratch(dag, arch, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_order_respects_precedence;
    use mbsp_gen::tiny_dataset;

    #[test]
    fn dfs_schedule_is_valid_and_sequential() {
        let arch = Architecture::single_processor(100.0, 1.0);
        for inst in tiny_dataset(1) {
            let result = DfsScheduler::new().schedule(&inst.dag, &arch);
            result.schedule.validate(&inst.dag).unwrap();
            assert_eq!(result.schedule.num_supersteps(), 1);
            assert_eq!(result.order.len(), inst.dag.num_nodes());
            // The order hint is a topological order.
            assert_order_respects_precedence(&inst.dag, &result.order);
        }
    }
}
