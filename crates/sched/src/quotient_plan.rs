//! High-level scheduling plan for the quotient graph of an acyclic partition.
//!
//! The divide-and-conquer scheduler (Section 6.3) needs a "scheduling plan" on the
//! quotient DAG: which set of processors each part gets, and in which order the
//! parts are handled. The paper uses an adjusted version of the BSPg heuristic that
//! allows assigning several processors to one (contracted) node, reducing its
//! execution time proportionally.
//!
//! [`QuotientPlanner`] implements that idea as a malleable-task list scheduler: the
//! contracted parts are processed in topological order by bottom-level priority;
//! each part is given a contiguous group of processors whose size is proportional to
//! the part's share of the remaining work among the currently ready parts, and parts
//! that are independent of each other may run side by side in the same *stage*.

use mbsp_dag::topo::bottom_levels;
use mbsp_dag::{CompDag, NodeId, TopologicalOrder};
use mbsp_model::{Architecture, ProcId};

/// The plan entry of one part: which processors execute it, and in which stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartPlan {
    /// The part (node of the quotient graph).
    pub part: usize,
    /// The processors assigned to this part.
    pub processors: Vec<ProcId>,
    /// The stage (position in the high-level order); parts in the same stage are
    /// independent and run side by side on disjoint processor groups.
    pub stage: usize,
}

/// A complete plan for the quotient graph.
#[derive(Debug, Clone, Default)]
pub struct QuotientPlan {
    /// Per part (indexed by quotient node id), the plan entry.
    pub parts: Vec<PartPlan>,
}

impl QuotientPlan {
    /// The plan entries grouped by stage, in stage order.
    pub fn stages(&self) -> Vec<Vec<&PartPlan>> {
        let max_stage = self
            .parts
            .iter()
            .map(|p| p.stage)
            .max()
            .map_or(0, |m| m + 1);
        let mut out = vec![Vec::new(); max_stage];
        for p in &self.parts {
            out[p.stage].push(p);
        }
        out
    }

    /// The plan entry of a given part.
    pub fn part(&self, part: usize) -> &PartPlan {
        self.parts
            .iter()
            .find(|p| p.part == part)
            .expect("part exists in plan")
    }

    /// The order in which parts should be scheduled (stage by stage, parts within a
    /// stage in index order). This is a topological order of the quotient graph.
    pub fn part_order(&self) -> Vec<usize> {
        let mut entries: Vec<(usize, usize)> =
            self.parts.iter().map(|p| (p.stage, p.part)).collect();
        entries.sort_unstable();
        entries.into_iter().map(|(_, part)| part).collect()
    }
}

/// Planner producing [`QuotientPlan`]s from a quotient DAG.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuotientPlanner;

impl QuotientPlanner {
    /// Creates a new planner.
    pub fn new() -> Self {
        QuotientPlanner
    }

    /// Builds a plan for the quotient DAG `quotient` on `arch.processors`
    /// processors. Every part receives at least one processor; independent parts in
    /// the same stage share the machine proportionally to their compute weight.
    pub fn plan(&self, quotient: &CompDag, arch: &Architecture) -> QuotientPlan {
        let k = quotient.num_nodes();
        if k == 0 {
            return QuotientPlan::default();
        }
        let p = arch.processors;
        let priorities = bottom_levels(quotient);
        let topo = TopologicalOrder::of(quotient);

        let mut remaining_parents: Vec<usize> =
            (0..k).map(|i| quotient.in_degree(NodeId::new(i))).collect();
        let mut scheduled = vec![false; k];
        let mut plans: Vec<PartPlan> = Vec::with_capacity(k);
        let mut stage = 0usize;
        let mut num_done = 0usize;

        while num_done < k {
            // Ready parts: all quotient parents already planned in earlier stages.
            let mut ready: Vec<NodeId> = (0..k)
                .map(NodeId::new)
                .filter(|&v| !scheduled[v.index()] && remaining_parents[v.index()] == 0)
                .collect();
            ready.sort_by(|&a, &b| {
                priorities[b.index()]
                    .partial_cmp(&priorities[a.index()])
                    .unwrap()
                    .then(topo.position(a).cmp(&topo.position(b)))
            });
            debug_assert!(!ready.is_empty(), "quotient graph is acyclic");
            // At most `p` parts per stage (each needs at least one processor).
            ready.truncate(p);

            // Proportional processor allocation by compute weight.
            let total_work: f64 = ready
                .iter()
                .map(|&v| quotient.compute_weight(v).max(1e-9))
                .sum();
            let mut alloc: Vec<usize> = ready
                .iter()
                .map(|&v| {
                    let share = quotient.compute_weight(v).max(1e-9) / total_work;
                    ((share * p as f64).floor() as usize).max(1)
                })
                .collect();
            // Repair the allocation so that it sums to exactly min(p, ...) >= ready.len().
            let mut total_alloc: usize = alloc.iter().sum();
            while total_alloc > p {
                // Shrink the largest allocation above 1.
                if let Some(i) = (0..alloc.len())
                    .filter(|&i| alloc[i] > 1)
                    .max_by_key(|&i| alloc[i])
                {
                    alloc[i] -= 1;
                    total_alloc -= 1;
                } else {
                    break;
                }
            }
            let mut idx = 0usize;
            while total_alloc < p {
                // Grow allocations round-robin (prefer heavier parts first: `ready`
                // is sorted by priority).
                let slot = idx % alloc.len();
                alloc[slot] += 1;
                total_alloc += 1;
                idx += 1;
            }

            // Hand out contiguous processor groups.
            let mut next_proc = 0usize;
            for (i, &part) in ready.iter().enumerate() {
                let count = alloc[i].min(p - next_proc).max(1);
                let processors: Vec<ProcId> =
                    (next_proc..next_proc + count).map(ProcId::new).collect();
                next_proc = (next_proc + count).min(p);
                plans.push(PartPlan {
                    part: part.index(),
                    processors,
                    stage,
                });
                scheduled[part.index()] = true;
                num_done += 1;
            }
            // Unlock children of the parts planned in this stage.
            for plan in plans.iter().filter(|pl| pl.stage == stage) {
                for &c in quotient.children(NodeId::new(plan.part)) {
                    remaining_parents[c.index()] -= 1;
                }
            }
            stage += 1;
        }
        plans.sort_by_key(|p| p.part);
        QuotientPlan { parts: plans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbsp_dag::graph::NodeWeights;

    fn arch(p: usize) -> Architecture {
        Architecture::new(p, 100.0, 1.0, 10.0)
    }

    #[test]
    fn sequential_quotient_gets_all_processors_per_part() {
        // A path of three parts: each stage has one part which should get all procs.
        let q = CompDag::from_edges("q", vec![NodeWeights::new(10.0, 5.0); 3], &[(0, 1), (1, 2)])
            .unwrap();
        let plan = QuotientPlanner::new().plan(&q, &arch(4));
        assert_eq!(plan.parts.len(), 3);
        for part in &plan.parts {
            assert_eq!(part.processors.len(), 4);
        }
        assert_eq!(plan.part_order(), vec![0, 1, 2]);
        assert_eq!(plan.stages().len(), 3);
    }

    #[test]
    fn parallel_parts_share_the_machine() {
        // Two independent heavy parts followed by a join part.
        let q = CompDag::from_edges(
            "q",
            vec![
                NodeWeights::new(10.0, 5.0),
                NodeWeights::new(10.0, 5.0),
                NodeWeights::new(2.0, 1.0),
            ],
            &[(0, 2), (1, 2)],
        )
        .unwrap();
        let plan = QuotientPlanner::new().plan(&q, &arch(4));
        let p0 = plan.part(0);
        let p1 = plan.part(1);
        let p2 = plan.part(2);
        assert_eq!(p0.stage, 0);
        assert_eq!(p1.stage, 0);
        assert_eq!(p2.stage, 1);
        // The two parallel parts split the 4 processors evenly and disjointly.
        assert_eq!(p0.processors.len() + p1.processors.len(), 4);
        let overlap = p0
            .processors
            .iter()
            .filter(|p| p1.processors.contains(p))
            .count();
        assert_eq!(overlap, 0);
        // The join part gets the whole machine.
        assert_eq!(p2.processors.len(), 4);
    }

    #[test]
    fn proportional_allocation_prefers_heavy_parts() {
        let q = CompDag::from_edges(
            "q",
            vec![NodeWeights::new(30.0, 5.0), NodeWeights::new(10.0, 5.0)],
            &[],
        )
        .unwrap();
        let plan = QuotientPlanner::new().plan(&q, &arch(4));
        assert!(plan.part(0).processors.len() >= plan.part(1).processors.len());
        assert_eq!(
            plan.part(0).processors.len() + plan.part(1).processors.len(),
            4
        );
    }

    #[test]
    fn more_ready_parts_than_processors() {
        // Five independent parts on two processors: stages are formed so that each
        // stage has at most two parts.
        let q = CompDag::from_edges("q", vec![NodeWeights::new(5.0, 1.0); 5], &[]).unwrap();
        let plan = QuotientPlanner::new().plan(&q, &arch(2));
        assert_eq!(plan.parts.len(), 5);
        for stage in plan.stages() {
            assert!(stage.len() <= 2);
            for part in stage {
                assert!(!part.processors.is_empty());
            }
        }
    }

    #[test]
    fn empty_quotient_yields_empty_plan() {
        let q = CompDag::new("empty");
        let plan = QuotientPlanner::new().plan(&q, &arch(4));
        assert!(plan.parts.is_empty());
        assert!(plan.stages().is_empty());
    }
}
