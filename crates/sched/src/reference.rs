//! Pre-scratch baseline schedulers, retained verbatim as differential oracles.
//!
//! The optimised schedulers in [`crate::greedy`], [`crate::cilk`] and
//! [`crate::dfs`] run on reusable flat scratch buffers and prune their ready
//! lists; these functions are the straightforward implementations they replaced
//! — fresh `Vec<Vec<bool>>` per superstep, a full `O(V)` sweep per superstep
//! close, one allocation per DFS step — kept because they are obviously correct.
//! The differential tests in `tests/scheduler_differential.rs` assert that, for
//! the same DAG, architecture and configuration, the optimised schedulers
//! produce **byte-identical** scheduling results (assignment, supersteps and
//! order hint), following the workspace's oracle convention
//! (`lp_solver::dense`, `mbsp_cache::two_stage::reference`,
//! `mbsp_dag::reference`, `mbsp_model::reference`).

use crate::greedy::GreedyBspConfig;
use crate::BspSchedulingResult;
use mbsp_dag::topo::bottom_levels;
use mbsp_dag::{CompDag, NodeId};
use mbsp_model::{Architecture, BspSchedule, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The pre-scratch greedy BSP list scheduler (original implementation).
pub fn greedy_reference(
    config: &GreedyBspConfig,
    dag: &CompDag,
    arch: &Architecture,
) -> BspSchedulingResult {
    let n = dag.num_nodes();
    let p = arch.processors;
    let priorities = bottom_levels(dag);

    // Work quantum per processor per superstep.
    let max_node_weight = dag
        .nodes()
        .map(|v| dag.compute_weight(v))
        .fold(0.0, f64::max);
    let quantum = (arch.latency * config.quantum_latency_factor)
        .max(config.min_quantum)
        .max(max_node_weight);

    // Scheduling state.
    let mut assignment: Vec<Option<(ProcId, usize)>> = vec![None; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut remaining_parents: Vec<usize> = (0..n).map(|i| dag.in_degree(NodeId::new(i))).collect();
    let mut scheduled = 0usize;

    // Sources are "scheduled" implicitly: they are inputs that live in slow
    // memory. We place them on processor 0, superstep 0 so that the assignment
    // covers every node, but they carry no compute work.
    let mut ready: Vec<NodeId> = Vec::new();
    for v in dag.nodes() {
        if dag.is_source(v) {
            assignment[v.index()] = Some((ProcId::new(0), 0));
            order.push(v);
            scheduled += 1;
            for &c in dag.children(v) {
                remaining_parents[c.index()] -= 1;
                if remaining_parents[c.index()] == 0 {
                    ready.push(c);
                }
            }
        } else if dag.in_degree(v) == 0 {
            ready.push(v);
        }
    }

    let mut superstep = 0usize;
    // `finished_before[v]` is true once v was assigned in a superstep strictly
    // before the current one (its value can have been communicated).
    let mut finished_before: Vec<bool> = (0..n).map(|i| assignment[i].is_some()).collect();

    while scheduled < n {
        superstep += 1;
        let mut load = vec![0.0f64; p];
        // Nodes assigned in *this* superstep, per processor, to allow same-proc
        // chains within a superstep.
        let mut assigned_here: Vec<Vec<bool>> = vec![vec![false; n]; p];
        let mut progressed = true;

        while progressed {
            progressed = false;
            // Candidate selection: eligible ready nodes sorted by priority.
            let mut candidates: Vec<NodeId> = ready
                .iter()
                .copied()
                .filter(|&v| assignment[v.index()].is_none())
                .collect();
            candidates.sort_by(|&a, &b| {
                priorities[b.index()]
                    .partial_cmp(&priorities[a.index()])
                    .unwrap()
                    .then(a.cmp(&b))
            });

            for v in candidates {
                // Determine which processors may execute v in this superstep:
                // every parent must be finished before this superstep, or be
                // assigned to that same processor within this superstep.
                let mut allowed: Vec<ProcId> = Vec::new();
                'proc: for pi in 0..p {
                    for &u in dag.parents(v) {
                        let ok = finished_before[u.index()] || assigned_here[pi][u.index()];
                        if !ok {
                            continue 'proc;
                        }
                    }
                    allowed.push(ProcId::new(pi));
                }
                if allowed.is_empty() {
                    continue;
                }
                // Skip nodes if every allowed processor is already full, unless
                // nothing has been placed in this superstep yet (guarantee
                // progress).
                let someone_below_quantum = allowed.iter().any(|&q| load[q.index()] < quantum);
                let superstep_empty = load.iter().all(|&l| l == 0.0);
                if !someone_below_quantum && !superstep_empty {
                    continue;
                }

                // Placement score: balance + communication.
                let mut best: Option<(f64, ProcId)> = None;
                for &q in &allowed {
                    let comm: f64 = dag
                        .parents(v)
                        .iter()
                        .filter(|&&u| {
                            let (pu, _) = assignment[u.index()].expect("parent scheduled");
                            pu != q && !dag.is_source(u)
                        })
                        .map(|&u| dag.memory_weight(u) * arch.g)
                        .sum();
                    let score = config.balance_weight * load[q.index()] + config.comm_weight * comm;
                    if best.map_or(true, |(s, _)| score < s - 1e-12) {
                        best = Some((score, q));
                    }
                }
                let (_, chosen) = best.expect("allowed is non-empty");
                if load[chosen.index()] >= quantum && !superstep_empty {
                    continue;
                }

                // Commit the assignment.
                assignment[v.index()] = Some((chosen, superstep));
                assigned_here[chosen.index()][v.index()] = true;
                load[chosen.index()] += dag.compute_weight(v);
                order.push(v);
                scheduled += 1;
                progressed = true;
                for &c in dag.children(v) {
                    remaining_parents[c.index()] -= 1;
                    if remaining_parents[c.index()] == 0 {
                        ready.push(c);
                    }
                }
            }
        }
        // Close the superstep: everything assigned so far is now visible to
        // other processors.
        for v in dag.nodes() {
            if assignment[v.index()].is_some() {
                finished_before[v.index()] = true;
            }
        }
    }

    let assignment: Vec<(ProcId, usize)> = assignment
        .into_iter()
        .map(|a| a.expect("all nodes scheduled"))
        .collect();
    let mut schedule = BspSchedule::new(p, assignment);
    schedule.compact_supersteps();
    BspSchedulingResult { schedule, order }
}

/// The pre-scratch work-stealing simulation + BSP fold (original implementation).
pub fn cilk_reference(seed: u64, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult {
    let p = arch.processors;
    let (owner, completion_order) = cilk_simulate_reference(seed, dag, p);
    let n = dag.num_nodes();

    // Fold the trace into supersteps: a node's superstep is at least one more
    // than the superstep of any parent on a different processor, at least the
    // superstep of any parent on the same processor, and at least the superstep
    // of the previous node executed by the same worker (the trace order must
    // stay realisable).
    let mut superstep = vec![0usize; n];
    let mut last_step_of_worker = vec![0usize; p];
    let mut assignment: Vec<(ProcId, usize)> = vec![(ProcId::new(0), 0); n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);

    // Sources first: processor 0, superstep 0.
    for v in dag.nodes() {
        if dag.is_source(v) {
            assignment[v.index()] = (ProcId::new(0), 0);
            order.push(v);
        }
    }
    for &v in &completion_order {
        let w = owner[v.index()];
        let mut s = last_step_of_worker[w.index()];
        for &u in dag.parents(v) {
            if dag.is_source(u) {
                continue;
            }
            let su = superstep[u.index()];
            let needed = if owner[u.index()] == w { su } else { su + 1 };
            s = s.max(needed);
        }
        superstep[v.index()] = s;
        last_step_of_worker[w.index()] = s;
        assignment[v.index()] = (w, s);
        order.push(v);
    }

    // Shift all non-source nodes by one superstep to leave superstep 0 to the
    // sources (cross-processor edges need strictly increasing supersteps).
    for v in dag.nodes() {
        if !dag.is_source(v) {
            assignment[v.index()].1 += 1;
        }
    }

    let mut schedule = BspSchedule::new(p, assignment);
    schedule.compact_supersteps();
    BspSchedulingResult { schedule, order }
}

/// The original work-stealing simulation (fresh buffers per call).
fn cilk_simulate_reference(
    seed: u64,
    dag: &CompDag,
    processors: usize,
) -> (Vec<ProcId>, Vec<NodeId>) {
    let n = dag.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining_parents: Vec<usize> = (0..n).map(|i| dag.in_degree(NodeId::new(i))).collect();
    let mut owner: Vec<ProcId> = vec![ProcId::new(0); n];
    let mut deques: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); processors];

    // Seed the deques with the children of the sources that become ready, spread
    // round-robin over the workers (sources themselves are inputs).
    let mut initially_ready: Vec<NodeId> = Vec::new();
    for v in dag.nodes() {
        if dag.is_source(v) {
            for &c in dag.children(v) {
                remaining_parents[c.index()] -= 1;
                if remaining_parents[c.index()] == 0 {
                    initially_ready.push(c);
                }
            }
        }
    }
    initially_ready.sort();
    initially_ready.dedup();
    for (i, v) in initially_ready.into_iter().enumerate() {
        deques[i % processors].push_back(v);
    }

    // Event-driven simulation in virtual time: each worker has a time at which
    // it becomes idle; the earliest idle worker acts next.
    let mut worker_time = vec![0.0f64; processors];
    let mut completion_order: Vec<NodeId> = Vec::new();
    let mut executed = vec![false; n];
    let non_source_count = dag.nodes().filter(|&v| !dag.is_source(v)).count();

    while completion_order.len() < non_source_count {
        // Pick the worker with the smallest current time (ties: lowest index).
        let w = (0..processors)
            .min_by(|&a, &b| worker_time[a].partial_cmp(&worker_time[b]).unwrap())
            .unwrap();
        // Take own work from the bottom of the deque, or steal from the top of a
        // random victim.
        let task = if let Some(t) = deques[w].pop_back() {
            Some(t)
        } else {
            let mut stolen = None;
            // Try a few random victims, then scan everyone (deterministic bound).
            for _ in 0..processors {
                let victim = rng.gen_range(0..processors);
                if victim != w {
                    if let Some(t) = deques[victim].pop_front() {
                        stolen = Some(t);
                        break;
                    }
                }
            }
            if stolen.is_none() {
                for victim in 0..processors {
                    if victim != w {
                        if let Some(t) = deques[victim].pop_front() {
                            stolen = Some(t);
                            break;
                        }
                    }
                }
            }
            stolen
        };
        match task {
            Some(v) => {
                debug_assert!(!executed[v.index()]);
                executed[v.index()] = true;
                owner[v.index()] = ProcId::new(w);
                worker_time[w] += dag.compute_weight(v).max(f64::MIN_POSITIVE);
                completion_order.push(v);
                // Newly ready children go to this worker's deque (depth-first).
                for &c in dag.children(v) {
                    remaining_parents[c.index()] -= 1;
                    if remaining_parents[c.index()] == 0 {
                        deques[w].push_back(c);
                    }
                }
            }
            None => {
                // Nothing to steal right now: advance this worker's clock past
                // the next busy worker so someone else can produce work.
                let next_busy = worker_time
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != w)
                    .map(|(_, &t)| t)
                    .fold(f64::INFINITY, f64::min);
                worker_time[w] = if next_busy.is_finite() {
                    next_busy + 1e-6
                } else {
                    worker_time[w] + 1.0
                };
            }
        }
    }
    (owner, completion_order)
}

/// The pre-scratch DFS scheduler: original depth-first order (one `ready`
/// allocation per emitted node) on a single processor and superstep.
pub fn dfs_reference(dag: &CompDag) -> BspSchedulingResult {
    let n = dag.num_nodes();
    let mut remaining_parents: Vec<usize> = (0..n).map(|i| dag.in_degree(NodeId::new(i))).collect();
    let mut stack: Vec<NodeId> = dag.sources();
    stack.reverse();
    let mut order = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    while let Some(u) = stack.pop() {
        if emitted[u.index()] {
            continue;
        }
        emitted[u.index()] = true;
        order.push(u);
        let mut ready: Vec<NodeId> = Vec::new();
        for &c in dag.children(u) {
            remaining_parents[c.index()] -= 1;
            if remaining_parents[c.index()] == 0 {
                ready.push(c);
            }
        }
        ready.sort();
        for &c in ready.iter().rev() {
            stack.push(c);
        }
    }
    debug_assert_eq!(order.len(), n);
    let assignment = vec![(ProcId::new(0), 0usize); n];
    BspSchedulingResult {
        schedule: BspSchedule::new(1, assignment),
        order,
    }
}
