//! # mbsp-sched — BSP baseline schedulers
//!
//! The first stage of the paper's two-stage baseline is a multiprocessor BSP
//! scheduler that ignores the memory bound. This crate provides the schedulers used
//! in the experiments:
//!
//! * [`GreedyBspScheduler`] — a reimplementation of the BSPg-style greedy scheduler
//!   of Papp et al. (SPAA 2024): list scheduling with bottom-level priorities,
//!   superstep formation driven by the synchronisation cost `L`, and a placement
//!   rule that balances per-superstep work against the communication volume caused
//!   by cross-processor edges.
//! * [`CilkScheduler`] — a simulation of the Cilk work-stealing scheduler
//!   (Blumofe & Leiserson) whose execution trace is converted into a BSP schedule;
//!   together with LRU eviction it forms the paper's "practical" baseline.
//! * [`DfsScheduler`] — the single-processor depth-first schedule used as the
//!   baseline for the red–blue pebbling experiments (`P = 1`).
//! * [`quotient_plan`] — the adjusted BSPg planner used by the divide-and-conquer
//!   scheduler on the quotient graph, where a part may be assigned several
//!   processors at once.
//!
//! All schedulers implement the [`BspScheduler`] trait and produce a
//! [`mbsp_model::BspSchedule`], plus an explicit per-node ordering hint used by the
//! BSP→MBSP conversion in `mbsp-cache`.
//!
//! Scheduling runs on reusable flat scratch buffers ([`SchedulerScratch`],
//! threaded through [`BspScheduler::schedule_with_scratch`]): O(1) allocations
//! per superstep, pruned ready lists, and no per-superstep `Vec<Vec<bool>>`.
//! The pre-scratch implementations are retained verbatim in [`mod@reference`] as
//! differential oracles — the tests in `tests/scheduler_differential.rs`
//! assert byte-identical schedules — following the workspace's oracle
//! convention.

pub mod cilk;
pub mod dfs;
pub mod greedy;
pub mod quotient_plan;
pub mod reference;

pub use cilk::CilkScheduler;
pub use dfs::DfsScheduler;
pub use greedy::GreedyBspScheduler;
pub use quotient_plan::{QuotientPlan, QuotientPlanner};

use mbsp_dag::topo::{DfsOrderScratch, TopologicalOrder};
use mbsp_dag::{CompDag, NodeId};
use mbsp_model::{Architecture, BspSchedule, ProcId};
use std::collections::VecDeque;

/// The output of a BSP scheduling stage: the assignment of nodes to processors and
/// supersteps, plus a global order hint describing the intended execution order of
/// the nodes on each processor (used when converting to an MBSP schedule).
#[derive(Debug, Clone)]
pub struct BspSchedulingResult {
    /// The BSP schedule (processor and superstep per node).
    pub schedule: BspSchedule,
    /// A global node order consistent with the schedule; within a processor and
    /// superstep, nodes are intended to execute in this relative order.
    pub order: Vec<NodeId>,
}

/// Reusable scratch buffers shared by the baseline schedulers.
///
/// All per-call working state of the greedy, Cilk and DFS schedulers lives here:
/// priorities, ready lists, per-processor loads, work-stealing deques, the DFS
/// stack, and the version-stamped bookkeeping arrays. One instance serves any
/// number of [`BspScheduler::schedule_with_scratch`] calls (also across
/// different DAGs — buffers are resized on entry), so scheduling a 100k-node
/// instance allocates O(1) per superstep instead of O(V · P).
#[derive(Debug, Clone, Default)]
pub struct SchedulerScratch {
    // Shared traversal state.
    pub(crate) topo: TopologicalOrder,
    pub(crate) priorities: Vec<f64>,
    pub(crate) remaining_parents: Vec<u32>,
    pub(crate) ready: Vec<NodeId>,
    // Greedy scheduler.
    pub(crate) candidates: Vec<NodeId>,
    pub(crate) allowed: Vec<ProcId>,
    pub(crate) load: Vec<f64>,
    pub(crate) finished_before: Vec<bool>,
    pub(crate) newly_assigned: Vec<NodeId>,
    // Cilk work-stealing simulation + superstep fold.
    pub(crate) deques: Vec<VecDeque<NodeId>>,
    pub(crate) worker_time: Vec<f64>,
    pub(crate) executed: Vec<bool>,
    pub(crate) owner: Vec<ProcId>,
    pub(crate) completion_order: Vec<NodeId>,
    pub(crate) superstep_of: Vec<usize>,
    pub(crate) last_step_of_worker: Vec<usize>,
    // DFS order.
    pub(crate) dfs: DfsOrderScratch,
}

impl SchedulerScratch {
    /// Creates an empty scratch holder (buffers grow on first use).
    pub fn new() -> Self {
        SchedulerScratch::default()
    }
}

/// A scheduler producing BSP schedules (the memory-oblivious first stage).
pub trait BspScheduler {
    /// Human-readable name of the scheduler (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Computes a BSP schedule of `dag` on `arch`, ignoring the memory bound.
    fn schedule(&self, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult;

    /// Like [`BspScheduler::schedule`], reusing the caller's scratch buffers.
    ///
    /// The default implementation ignores the scratch; the baseline schedulers
    /// override it so loops that schedule many (or huge) instances amortise
    /// every allocation.
    fn schedule_with_scratch(
        &self,
        dag: &CompDag,
        arch: &Architecture,
        _scratch: &mut SchedulerScratch,
    ) -> BspSchedulingResult {
        self.schedule(dag, arch)
    }
}

/// Asserts that `order` covers every node of `dag` exactly once and respects all
/// precedence edges (every node appears after each of its parents).
///
/// This is the shared schedule-order validation used by the scheduler tests (it
/// replaces three copy-pasted `pos: HashMap` blocks); it runs on a flat position
/// array, so it is cheap enough for large differential sweeps. Panics with the
/// offending edge on violation.
pub fn assert_order_respects_precedence(dag: &CompDag, order: &[NodeId]) {
    assert_eq!(
        order.len(),
        dag.num_nodes(),
        "order hint must cover every node exactly once"
    );
    let mut pos = vec![usize::MAX; dag.num_nodes()];
    for (i, &v) in order.iter().enumerate() {
        assert_eq!(
            pos[v.index()],
            usize::MAX,
            "node {v} appears twice in the order hint"
        );
        pos[v.index()] = i;
    }
    for (u, v) in dag.edges() {
        assert!(
            pos[u.index()] < pos[v.index()],
            "order hint violates edge {u}->{v}"
        );
    }
}
