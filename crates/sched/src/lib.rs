//! # mbsp-sched — BSP baseline schedulers
//!
//! The first stage of the paper's two-stage baseline is a multiprocessor BSP
//! scheduler that ignores the memory bound. This crate provides the schedulers used
//! in the experiments:
//!
//! * [`GreedyBspScheduler`] — a reimplementation of the BSPg-style greedy scheduler
//!   of Papp et al. (SPAA 2024): list scheduling with bottom-level priorities,
//!   superstep formation driven by the synchronisation cost `L`, and a placement
//!   rule that balances per-superstep work against the communication volume caused
//!   by cross-processor edges.
//! * [`CilkScheduler`] — a simulation of the Cilk work-stealing scheduler
//!   (Blumofe & Leiserson) whose execution trace is converted into a BSP schedule;
//!   together with LRU eviction it forms the paper's "practical" baseline.
//! * [`DfsScheduler`] — the single-processor depth-first schedule used as the
//!   baseline for the red–blue pebbling experiments (`P = 1`).
//! * [`quotient_plan`] — the adjusted BSPg planner used by the divide-and-conquer
//!   scheduler on the quotient graph, where a part may be assigned several
//!   processors at once.
//!
//! All schedulers implement the [`BspScheduler`] trait and produce a
//! [`mbsp_model::BspSchedule`], plus an explicit per-node ordering hint used by the
//! BSP→MBSP conversion in `mbsp-cache`.

pub mod cilk;
pub mod dfs;
pub mod greedy;
pub mod quotient_plan;

pub use cilk::CilkScheduler;
pub use dfs::DfsScheduler;
pub use greedy::GreedyBspScheduler;
pub use quotient_plan::{QuotientPlan, QuotientPlanner};

use mbsp_dag::{CompDag, NodeId};
use mbsp_model::{Architecture, BspSchedule};

/// The output of a BSP scheduling stage: the assignment of nodes to processors and
/// supersteps, plus a global order hint describing the intended execution order of
/// the nodes on each processor (used when converting to an MBSP schedule).
#[derive(Debug, Clone)]
pub struct BspSchedulingResult {
    /// The BSP schedule (processor and superstep per node).
    pub schedule: BspSchedule,
    /// A global node order consistent with the schedule; within a processor and
    /// superstep, nodes are intended to execute in this relative order.
    pub order: Vec<NodeId>,
}

/// A scheduler producing BSP schedules (the memory-oblivious first stage).
pub trait BspScheduler {
    /// Human-readable name of the scheduler (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Computes a BSP schedule of `dag` on `arch`, ignoring the memory bound.
    fn schedule(&self, dag: &CompDag, arch: &Architecture) -> BspSchedulingResult;
}
