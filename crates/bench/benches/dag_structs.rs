//! Criterion micro-benchmarks of the flattened DAG and pebble-state substrate:
//! CSR traversal vs. the nested-Vec adjacency oracle, bitset configuration
//! operations vs. the nested-`Vec<bool>` reference, and the scratch-based
//! schedulers vs. their pre-scratch reference implementations, on a
//! mid-sized layered-random instance.

use criterion::{criterion_group, criterion_main, Criterion};
use mbsp_dag::reference::AdjacencyOracle;
use mbsp_dag::{CompDag, NodeId, TopologicalOrder};
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_model::reference::ReferenceConfiguration;
use mbsp_model::{Architecture, Configuration, ProcId};
use mbsp_sched::{
    greedy::GreedyBspConfig, reference, BspScheduler, GreedyBspScheduler, SchedulerScratch,
};

fn setup() -> CompDag {
    random_layered_dag(
        &RandomDagConfig {
            layers: 40,
            width: 50,
            edge_probability: 0.08,
            ..Default::default()
        },
        11,
    )
}

fn bench_adjacency(c: &mut Criterion) {
    let dag = setup();
    let edges: Vec<(NodeId, NodeId)> = dag.edges().collect();
    let oracle = AdjacencyOracle::new(dag.num_nodes(), &edges);
    let mut group = c.benchmark_group("adjacency_traversal");
    group.bench_function("csr_children_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in dag.nodes() {
                for &ch in dag.children(v) {
                    acc = acc.wrapping_add(ch.index());
                }
            }
            acc
        })
    });
    group.bench_function("nested_vec_children_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in dag.nodes() {
                for &ch in oracle.children(v) {
                    acc = acc.wrapping_add(ch.index());
                }
            }
            acc
        })
    });
    group.bench_function("topological_order", |b| {
        let mut topo = TopologicalOrder::default();
        b.iter(|| {
            topo.rebuild(&dag);
            topo.order().len()
        })
    });
    group.finish();
}

fn bench_configuration(c: &mut Criterion) {
    let dag = setup();
    let arch = Architecture::new(4, 1e9, 1.0, 10.0);
    let nodes: Vec<NodeId> = dag.nodes().collect();
    let mut group = c.benchmark_group("pebble_state");
    group.bench_function("bitset_place_query_reset", |b| {
        let mut cfg = Configuration::initial(&dag, &arch);
        b.iter(|| {
            for (i, &v) in nodes.iter().enumerate() {
                let p = ProcId::new(i % 4);
                cfg.place_red_unchecked(&dag, p, v);
            }
            let cached = cfg.cached_nodes(ProcId::new(0)).count();
            cfg.reset_initial(&dag);
            cached
        })
    });
    group.bench_function("nested_vec_place_query_reset", |b| {
        let mut cfg = ReferenceConfiguration::initial(&dag, &arch);
        b.iter(|| {
            for (i, &v) in nodes.iter().enumerate() {
                let p = ProcId::new(i % 4);
                cfg.place_red_unchecked(&dag, p, v);
            }
            let cached = cfg.cached_nodes(ProcId::new(0)).len();
            cfg.reset_initial(&dag);
            cached
        })
    });
    group.finish();
}

fn bench_greedy_scratch(c: &mut Criterion) {
    let dag = setup();
    let arch = Architecture::new(4, 1e9, 1.0, 10.0);
    let mut group = c.benchmark_group("greedy_scheduler");
    group.bench_function("scratch_reuse", |b| {
        let sched = GreedyBspScheduler::new();
        let mut scratch = SchedulerScratch::new();
        b.iter(|| sched.schedule_with_scratch(&dag, &arch, &mut scratch))
    });
    group.bench_function("reference", |b| {
        let config = GreedyBspConfig::default();
        b.iter(|| reference::greedy_reference(&config, &dag, &arch))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_adjacency,
    bench_configuration,
    bench_greedy_scratch
);
criterion_main!(benches);
