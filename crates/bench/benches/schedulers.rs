//! Criterion micro-benchmarks of the scheduling pipelines: the greedy BSP scheduler,
//! the Cilk work-stealing simulation, the two-stage conversion and the holistic
//! post-optimisation pass, all on a representative tiny-dataset instance.

use criterion::{criterion_group, criterion_main, Criterion};
use mbsp_cache::{ClairvoyantPolicy, LruPolicy, TwoStageScheduler};
use mbsp_ilp::improver::{canonical_bsp, post_optimize};
use mbsp_model::{Architecture, CostModel, MbspInstance, ProcId};
use mbsp_sched::{BspScheduler, CilkScheduler, GreedyBspScheduler};

fn setup() -> MbspInstance {
    let named = mbsp_gen::tiny_dataset(42).remove(5); // spmv_N10
    MbspInstance::with_cache_factor(named.dag, Architecture::paper_default(0.0), 3.0)
}

fn bench_schedulers(c: &mut Criterion) {
    let instance = setup();
    let mut group = c.benchmark_group("bsp_schedulers");
    group.bench_function("greedy_bsp", |b| {
        b.iter(|| GreedyBspScheduler::new().schedule(instance.dag(), instance.arch()))
    });
    group.bench_function("cilk_work_stealing", |b| {
        b.iter(|| CilkScheduler::new().schedule(instance.dag(), instance.arch()))
    });
    group.finish();
}

fn bench_two_stage(c: &mut Criterion) {
    let instance = setup();
    let bsp = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
    let converter = TwoStageScheduler::new();
    let mut group = c.benchmark_group("two_stage_conversion");
    group.bench_function("clairvoyant", |b| {
        b.iter(|| {
            converter.schedule(
                instance.dag(),
                instance.arch(),
                &bsp,
                &ClairvoyantPolicy::new(),
            )
        })
    });
    group.bench_function("lru", |b| {
        b.iter(|| converter.schedule(instance.dag(), instance.arch(), &bsp, &LruPolicy::new()))
    });
    group.finish();
}

fn bench_holistic_components(c: &mut Criterion) {
    let instance = setup();
    let procs: Vec<ProcId> = instance
        .dag()
        .nodes()
        .map(|v| ProcId::new(v.index() % instance.arch().processors))
        .collect();
    let mut group = c.benchmark_group("holistic_components");
    group.bench_function("canonical_bsp", |b| {
        b.iter(|| canonical_bsp(instance.dag(), instance.arch(), &procs))
    });
    let bsp = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
    let schedule = TwoStageScheduler::new().schedule(
        instance.dag(),
        instance.arch(),
        &bsp,
        &ClairvoyantPolicy::new(),
    );
    group.bench_function("post_optimize", |b| {
        b.iter(|| {
            let mut s = schedule.clone();
            post_optimize(
                &mut s,
                instance.dag(),
                instance.arch(),
                CostModel::Synchronous,
                &[],
            );
            s
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_two_stage,
    bench_holistic_components
);
criterion_main!(benches);
