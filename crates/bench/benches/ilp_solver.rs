//! Criterion micro-benchmarks of the LP/MIP solver substrate and the acyclic
//! bipartitioning ILP (the pieces that replace COPT).

use criterion::{criterion_group, criterion_main, Criterion};
use lp_solver::{BranchBoundSolver, ConstraintSense, LinExpr, LpProblem, SolverLimits};
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_ilp::{bipartition, BipartitionConfig};
use std::time::Duration;

fn knapsack(n: usize) -> LpProblem {
    let mut p = LpProblem::new();
    let mut expr = LinExpr::new();
    for i in 0..n {
        let x = p.add_binary(format!("x{i}"), -((i % 7 + 1) as f64));
        expr.add(x, ((i % 5) + 1) as f64);
    }
    p.add_constraint("cap", expr, ConstraintSense::LessEqual, (n as f64) / 2.0);
    p
}

fn bench_lp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    let problem = knapsack(14);
    group.bench_function("lp_relaxation", |b| b.iter(|| lp_solver::solve_lp(&problem)));
    group.bench_function("branch_and_bound_knapsack14", |b| {
        b.iter(|| {
            BranchBoundSolver::with_limits(SolverLimits {
                max_nodes: 500,
                time_limit: Duration::from_secs(5),
                relative_gap: 1e-6,
            })
            .solve(&problem)
        })
    });
    group.finish();
}

fn bench_bipartition(c: &mut Criterion) {
    let dag = random_layered_dag(
        &RandomDagConfig { layers: 5, width: 6, ..Default::default() },
        11,
    );
    let config = BipartitionConfig {
        limits: SolverLimits {
            max_nodes: 200,
            time_limit: Duration::from_secs(2),
            relative_gap: 1e-6,
        },
        ..Default::default()
    };
    c.bench_function("acyclic_bipartition_30_nodes", |b| b.iter(|| bipartition(&dag, &config)));
}

criterion_group!(benches, bench_lp_solver, bench_bipartition);
criterion_main!(benches);
