//! Criterion micro-benchmarks of the LP/MIP solver substrate and the acyclic
//! bipartitioning ILP (the pieces that replace COPT).
//!
//! The `mbsp_ilp_relaxation` group times the sparse revised simplex against
//! the retained dense oracle on a real MBSP pebbling-ILP relaxation, and the
//! warm-started branch and bound on the full MIP — the numbers behind the
//! recorded `BENCH_solver.json` trajectory (see `make bench-json`).

use criterion::{criterion_group, criterion_main, Criterion};
use lp_solver::{BranchBoundSolver, ConstraintSense, LinExpr, LpProblem, SolverLimits};
use mbsp_dag::graph::NodeWeights;
use mbsp_dag::CompDag;
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_ilp::{bipartition, BipartitionConfig, IlpConfig, MbspIlpBuilder};
use mbsp_model::{Architecture, MbspInstance};
use std::time::Duration;

fn knapsack(n: usize) -> LpProblem {
    let mut p = LpProblem::new();
    let mut expr = LinExpr::new();
    for i in 0..n {
        let x = p.add_binary(format!("x{i}"), -((i % 7 + 1) as f64));
        expr.add(x, ((i % 5) + 1) as f64);
    }
    p.add_constraint("cap", expr, ConstraintSense::LessEqual, (n as f64) / 2.0);
    p
}

fn bench_lp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    let problem = knapsack(14);
    group.bench_function("lp_relaxation", |b| {
        b.iter(|| lp_solver::solve_lp(&problem))
    });
    group.bench_function("branch_and_bound_knapsack14", |b| {
        b.iter(|| {
            BranchBoundSolver::with_limits(SolverLimits {
                max_nodes: 500,
                time_limit: Duration::from_secs(5),
                relative_gap: 1e-6,
            })
            .solve(&problem)
        })
    });
    group.finish();
}

fn bench_bipartition(c: &mut Criterion) {
    let dag = random_layered_dag(
        &RandomDagConfig {
            layers: 5,
            width: 6,
            ..Default::default()
        },
        11,
    );
    let config = BipartitionConfig {
        limits: SolverLimits {
            max_nodes: 200,
            time_limit: Duration::from_secs(2),
            relative_gap: 1e-6,
        },
        ..Default::default()
    };
    c.bench_function("acyclic_bipartition_30_nodes", |b| {
        b.iter(|| bipartition(&dag, &config))
    });
}

/// The exact pebbling ILP of a 4-node path (`P = 1`, `T = 8`): the
/// representative instance of the recorded solver baseline.
fn mbsp_ilp_problem() -> LpProblem {
    let dag = CompDag::from_edges(
        "path4",
        vec![NodeWeights::unit(); 4],
        &[(0, 1), (1, 2), (2, 3)],
    )
    .unwrap();
    let instance = MbspInstance::new(dag, Architecture::new(1, 3.0, 1.0, 0.0));
    let config = IlpConfig {
        time_steps: 8,
        ..Default::default()
    };
    MbspIlpBuilder::build(&instance, &config).problem
}

fn bench_mbsp_ilp_relaxation(c: &mut Criterion) {
    let problem = mbsp_ilp_problem();
    let mut group = c.benchmark_group("mbsp_ilp_relaxation");
    group.bench_function("sparse_revised", |b| {
        b.iter(|| lp_solver::solve_lp(&problem))
    });
    group.bench_function("dense_oracle", |b| {
        b.iter(|| lp_solver::dense::solve_lp_dense(&problem))
    });
    group.finish();
}

fn bench_mbsp_ilp_branch_bound(c: &mut Criterion) {
    let problem = mbsp_ilp_problem();
    let limits = SolverLimits {
        max_nodes: 20_000,
        time_limit: Duration::from_secs(60),
        relative_gap: 1e-6,
    };
    c.bench_function("mbsp_ilp_branch_bound/sparse_warm", |b| {
        b.iter(|| BranchBoundSolver::with_limits(limits).solve(&problem))
    });
}

criterion_group!(
    benches,
    bench_lp_solver,
    bench_bipartition,
    bench_mbsp_ilp_relaxation,
    bench_mbsp_ilp_branch_bound,
);
criterion_main!(benches);
