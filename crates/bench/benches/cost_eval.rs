//! Criterion micro-benchmarks of schedule validation and cost evaluation — the inner
//! loop of the holistic local search.

use criterion::{criterion_group, criterion_main, Criterion};
use mbsp_cache::{ClairvoyantPolicy, TwoStageScheduler};
use mbsp_model::{async_cost, sync_cost, Architecture, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};

fn bench_cost_eval(c: &mut Criterion) {
    let named = mbsp_gen::tiny_dataset(42).remove(8); // CG_N4_K1, the largest tiny DAG
    let instance =
        MbspInstance::with_cache_factor(named.dag, Architecture::paper_default(0.0), 3.0);
    let bsp = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
    let schedule = TwoStageScheduler::new().schedule(
        instance.dag(),
        instance.arch(),
        &bsp,
        &ClairvoyantPolicy::new(),
    );
    let mut group = c.benchmark_group("cost_and_validation");
    group.bench_function("validate", |b| {
        b.iter(|| schedule.validate(instance.dag(), instance.arch()).unwrap())
    });
    group.bench_function("sync_cost", |b| {
        b.iter(|| sync_cost(&schedule, instance.dag(), instance.arch()))
    });
    group.bench_function("async_cost", |b| {
        b.iter(|| async_cost(&schedule, instance.dag(), instance.arch()))
    });
    group.bench_function("statistics", |b| {
        b.iter(|| schedule.statistics(instance.dag(), instance.arch()))
    });
    group.finish();
}

criterion_group!(benches, bench_cost_eval);
criterion_main!(benches);
