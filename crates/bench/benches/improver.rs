//! Criterion micro-benchmarks of the candidate-evaluation engine: one full
//! candidate evaluation through the incremental engine vs. the clone-and-recost
//! reference path, plus the underlying conversion step in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use mbsp_cache::{two_stage, ClairvoyantPolicy, ConversionArena, TwoStageConfig};
use mbsp_ilp::engine::{EvalPath, EvaluationEngine, Move};
use mbsp_ilp::improver::canonical_bsp;
use mbsp_model::{Architecture, CostModel, MbspInstance, MbspSchedule, ProcId};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (MbspInstance, Vec<Vec<ProcId>>) {
    let named = mbsp_gen::tiny_dataset(42).remove(8); // CG_N4_K1, the largest tiny DAG
    let instance =
        MbspInstance::with_cache_factor(named.dag, Architecture::paper_default(0.0), 3.0);
    let bsp = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
    // A fixed tour of neighbouring assignments, as the search would visit them.
    let dag = instance.dag();
    let movable: Vec<_> = dag.nodes().filter(|&v| !dag.is_source(v)).collect();
    let mut rng = StdRng::seed_from_u64(11);
    let mut procs: Vec<ProcId> = dag.nodes().map(|v| bsp.schedule.proc_of(v)).collect();
    let mut tour = Vec::new();
    while tour.len() < 16 {
        if let Some(mv) = Move::propose(dag, instance.arch(), &procs, &movable, &mut rng) {
            mv.apply(dag, &mut procs);
            tour.push(procs.clone());
        }
    }
    (instance, tour)
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    let (instance, tour) = setup();
    let mut group = c.benchmark_group("candidate_evaluation");
    group.bench_function("engine_incremental", |b| {
        let mut engine = EvaluationEngine::new(&instance, EvalPath::Incremental);
        let mut i = 0usize;
        b.iter(|| {
            let cost = engine.evaluate_assignment(
                &instance,
                &tour[i % tour.len()],
                CostModel::Synchronous,
                &[],
            );
            i += 1;
            cost
        })
    });
    group.bench_function("reference_clone_and_recost", |b| {
        let mut engine = EvaluationEngine::new(&instance, EvalPath::Reference);
        let mut i = 0usize;
        b.iter(|| {
            let cost = engine.evaluate_assignment(
                &instance,
                &tour[i % tour.len()],
                CostModel::Synchronous,
                &[],
            );
            i += 1;
            cost
        })
    });
    group.finish();
}

fn bench_conversion_only(c: &mut Criterion) {
    let (instance, tour) = setup();
    let (dag, arch) = (instance.dag(), instance.arch());
    let policy = ClairvoyantPolicy::new();
    let config = TwoStageConfig::default();
    let mut group = c.benchmark_group("conversion");
    group.bench_function("arena_convert_assignment", |b| {
        let mut arena = ConversionArena::new(dag, arch);
        let mut out = MbspSchedule::new(arch.processors);
        let mut i = 0usize;
        b.iter(|| {
            arena.convert_assignment(
                dag,
                arch,
                &tour[i % tour.len()],
                &policy,
                config,
                &[],
                &mut out,
            );
            i += 1;
            out.num_supersteps()
        })
    });
    group.bench_function("reference_fresh_converter", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let bsp = canonical_bsp(dag, arch, &tour[i % tour.len()]);
            let out = two_stage::reference::convert(dag, arch, &bsp, &policy, config, &[]);
            i += 1;
            out.num_supersteps()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_candidate_evaluation, bench_conversion_only);
criterion_main!(benches);
