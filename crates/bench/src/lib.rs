//! # mbsp-bench — experiment harness regenerating the paper's tables and figures
//!
//! Every table and figure of the evaluation section has a dedicated binary (see the
//! crate's `src/bin/` directory and EXPERIMENTS.md); this library holds the shared
//! machinery: instance preparation, the scheduler pipelines being compared, cost
//! evaluation, and report formatting (markdown tables and geometric means, the
//! paper's headline metric).
//!
//! The schedulers compared are
//!
//! * **baseline** — greedy BSP scheduling (BSPg-style) + clairvoyant eviction (the
//!   paper's main two-stage baseline);
//! * **ilp** — the holistic scheduler seeded with that baseline (the paper's
//!   ILP-based scheduler; see DESIGN.md, substitution 1);
//! * **cilk+lru** — the practical baseline (work stealing + LRU);
//! * **bsp-ilp** — the stronger two-stage baseline whose first stage optimises the
//!   pure BSP cost;
//! * **dnc** — the divide-and-conquer scheduler for the larger dataset.
//!
//! Wall-clock budgets are deliberately small so that the whole suite runs on a
//! laptop; set the `MBSP_BENCH_SECONDS` environment variable to give the holistic
//! search more time per instance (the paper gives COPT 30–60 minutes). Dataset
//! sweeps over independent instances run on scoped worker threads; set
//! `MBSP_BENCH_THREADS` to override the thread count (`1` forces serial runs).
//! Results are ordered by instance regardless of the thread interleaving.

use mbsp_cache::{ClairvoyantPolicy, EvictionPolicy, LruPolicy, TwoStageScheduler};
use mbsp_gen::NamedInstance;
use mbsp_ilp::{
    DivideAndConquerConfig, DivideAndConquerScheduler, HolisticConfig, HolisticScheduler,
};
use mbsp_model::{Architecture, CostModel, MbspInstance, MbspSchedule};
use mbsp_sched::{BspScheduler, CilkScheduler, DfsScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::Duration;

/// Parameters of one experiment configuration (a column of Table 4 / Figure 4).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Number of processors.
    pub processors: usize,
    /// Cache size as a multiple of the instance's minimal feasible cache `r₀`.
    pub cache_factor: f64,
    /// Communication gap `g`.
    pub g: f64,
    /// Synchronisation cost `L`.
    pub latency: f64,
    /// Cost model used for evaluation and optimisation.
    pub cost_model: CostModel,
    /// Time budget per instance for the holistic search.
    pub time_limit: Duration,
    /// Seed of the dataset and the search.
    pub seed: u64,
}

impl ExperimentParams {
    /// The paper's base configuration: `P = 4`, `r = 3·r₀`, `g = 1`, `L = 10`,
    /// synchronous cost.
    pub fn base() -> Self {
        ExperimentParams {
            processors: 4,
            cache_factor: 3.0,
            g: 1.0,
            latency: 10.0,
            cost_model: CostModel::Synchronous,
            time_limit: default_time_limit(),
            seed: 42,
        }
    }

    /// Builds the [`MbspInstance`] of a named benchmark DAG under these parameters.
    pub fn instance(&self, named: &NamedInstance) -> MbspInstance {
        let arch = Architecture::new(self.processors, 0.0, self.g, self.latency);
        MbspInstance::with_cache_factor(named.dag.clone(), arch, self.cache_factor)
    }

    /// The holistic-scheduler configuration corresponding to these parameters.
    pub fn holistic_config(&self) -> HolisticConfig {
        HolisticConfig {
            cost_model: self.cost_model,
            time_limit: self.time_limit,
            seed: self.seed,
            ..Default::default()
        }
    }
}

/// Per-instance time budget for the holistic search, overridable through the
/// `MBSP_BENCH_SECONDS` environment variable.
pub fn default_time_limit() -> Duration {
    let seconds = std::env::var("MBSP_BENCH_SECONDS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        // "inf" parses as a valid f64 but Duration::from_secs_f64 panics on
        // non-finite input; treat it like any other unusable value.
        .filter(|s| s.is_finite())
        .unwrap_or(3.0);
    Duration::from_secs_f64(seconds.clamp(0.1, 86_400.0))
}

/// One row of a comparison table.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Instance name.
    pub instance: String,
    /// Cost of the two-stage baseline.
    pub baseline: f64,
    /// Cost of the holistic (ILP-style) scheduler.
    pub ilp: f64,
    /// `ilp / baseline` cost-reduction ratio.
    pub ratio: f64,
}

/// Schedules an instance with the main two-stage baseline (greedy BSP +
/// clairvoyant eviction) and returns the schedule.
pub fn baseline_schedule(instance: &MbspInstance) -> MbspSchedule {
    two_stage_schedule(
        instance,
        &GreedyBspScheduler::new(),
        &ClairvoyantPolicy::new(),
    )
}

/// Schedules an instance with an arbitrary two-stage pipeline.
pub fn two_stage_schedule(
    instance: &MbspInstance,
    scheduler: &dyn BspScheduler,
    policy: &dyn EvictionPolicy,
) -> MbspSchedule {
    let bsp = scheduler.schedule(instance.dag(), instance.arch());
    TwoStageScheduler::new().schedule(instance.dag(), instance.arch(), &bsp, policy)
}

/// Schedules an instance with the holistic scheduler seeded by the main baseline.
pub fn holistic_schedule(instance: &MbspInstance, params: &ExperimentParams) -> MbspSchedule {
    let bsp = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
    HolisticScheduler::with_config(params.holistic_config()).schedule(instance, &bsp)
}

/// Evaluates a schedule under the experiment's cost model, checking validity first.
pub fn evaluate(
    instance: &MbspInstance,
    schedule: &MbspSchedule,
    params: &ExperimentParams,
) -> f64 {
    schedule
        .validate(instance.dag(), instance.arch())
        .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", instance.name()));
    params
        .cost_model
        .evaluate(schedule, instance.dag(), instance.arch())
}

/// Runs the baseline-vs-holistic comparison over the tiny dataset with the given
/// parameters (the core of Tables 1, 3, 4 and Figure 4).
pub fn run_tiny_comparison(params: &ExperimentParams) -> Vec<ComparisonRow> {
    mbsp_gen::tiny_dataset(params.seed)
        .iter()
        .map(|named| {
            let instance = params.instance(named);
            let base = evaluate(&instance, &baseline_schedule(&instance), params);
            let ilp = evaluate(&instance, &holistic_schedule(&instance, params), params);
            ComparisonRow {
                instance: named.name.clone(),
                baseline: base,
                ilp,
                ratio: ilp / base,
            }
        })
        .collect()
}

/// Number of worker threads for per-instance dataset sweeps: the
/// `MBSP_BENCH_THREADS` environment variable when set to a positive integer,
/// otherwise the machine's available parallelism, in both cases clamped to the
/// number of instances.
fn bench_threads(instances: usize) -> usize {
    // One env contract for the whole workspace: the pool's resolver owns the
    // MBSP_BENCH_THREADS parsing and the available-parallelism fallback.
    mbsp_pool::resolve_workers(0).clamp(1, instances.max(1))
}

/// Maps `f` over `0..count` with at most `threads` concurrent lanes on the
/// resident [`mbsp_pool::WorkerPool`] (dynamic index stealing, results **in
/// index order**), so parallel sweeps stay byte-for-byte deterministic. A panic
/// in any lane propagates.
fn parallel_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    mbsp_pool::WorkerPool::shared().run_indexed(count, threads, f)
}

/// Runs the divide-and-conquer comparison over the small-dataset sample
/// (Table 2). Instances are independent, so they are scheduled **in parallel**
/// on the resident worker pool (`MBSP_BENCH_THREADS` overrides the lane count;
/// set it to 1 for serial runs). Result rows keep the dataset order regardless
/// of lane interleaving.
pub fn run_small_dataset_comparison(params: &ExperimentParams) -> Vec<ComparisonRow> {
    let instances = mbsp_gen::small_dataset_sample(params.seed);
    let threads = bench_threads(instances.len());
    let dnc_config = DivideAndConquerConfig {
        cost_model: params.cost_model,
        per_part: HolisticConfig {
            cost_model: params.cost_model,
            time_limit: params.time_limit,
            seed: params.seed,
            // The sweep already parallelises across instances; keep every
            // per-part holistic search serial to avoid oversubscription.
            workers: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    parallel_indexed(instances.len(), threads, |i| {
        let named = &instances[i];
        let dnc = DivideAndConquerScheduler::with_config(dnc_config);
        let instance = params.instance(named);
        let base = evaluate(&instance, &baseline_schedule(&instance), params);
        let schedule = dnc.schedule(&instance);
        let ilp = evaluate(&instance, &schedule, params);
        ComparisonRow {
            instance: named.name.clone(),
            baseline: base,
            ilp,
            ratio: ilp / base,
        }
    })
}

/// The practical baseline of Table 3: Cilk work stealing + LRU eviction.
pub fn cilk_lru_schedule(instance: &MbspInstance) -> MbspSchedule {
    two_stage_schedule(instance, &CilkScheduler::new(), &LruPolicy::new())
}

/// The single-processor pebbling baseline: DFS order + clairvoyant eviction.
pub fn dfs_schedule(instance: &MbspInstance) -> MbspSchedule {
    two_stage_schedule(instance, &DfsScheduler::new(), &ClairvoyantPolicy::new())
}

/// Geometric mean of the cost-reduction ratios of a table.
pub fn geometric_mean_ratio(rows: &[ComparisonRow]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = rows.iter().map(|r| r.ratio.max(1e-12).ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

/// Renders a comparison table in the markdown layout used by EXPERIMENTS.md.
pub fn render_table(title: &str, rows: &[ComparisonRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let _ = writeln!(out, "| Instance | Baseline | ILP (holistic) | ratio |");
    let _ = writeln!(out, "|---|---:|---:|---:|");
    for row in rows {
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.0} | {:.2} |",
            row.instance, row.baseline, row.ilp, row.ratio
        );
    }
    let _ = writeln!(
        out,
        "\ngeometric-mean cost reduction: {:.2}x",
        geometric_mean_ratio(rows)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> ExperimentParams {
        ExperimentParams {
            time_limit: Duration::from_millis(300),
            ..ExperimentParams::base()
        }
    }

    #[test]
    fn baseline_and_holistic_run_on_one_instance() {
        let params = quick_params();
        let named = &mbsp_gen::tiny_dataset(params.seed)[3];
        let instance = params.instance(named);
        let base = evaluate(&instance, &baseline_schedule(&instance), &params);
        let ilp = evaluate(&instance, &holistic_schedule(&instance, &params), &params);
        assert!(base > 0.0);
        assert!(ilp <= base + 1e-9);
    }

    #[test]
    fn geometric_mean_and_table_rendering() {
        let rows = vec![
            ComparisonRow {
                instance: "a".into(),
                baseline: 100.0,
                ilp: 50.0,
                ratio: 0.5,
            },
            ComparisonRow {
                instance: "b".into(),
                baseline: 100.0,
                ilp: 200.0,
                ratio: 2.0,
            },
        ];
        assert!((geometric_mean_ratio(&rows) - 1.0).abs() < 1e-9);
        let table = render_table("Test", &rows);
        assert!(table.contains("| a | 100 | 50 | 0.50 |"));
        assert!(table.contains("geometric-mean"));
        assert_eq!(geometric_mean_ratio(&[]), 1.0);
    }

    #[test]
    fn parallel_indexed_preserves_order_and_covers_every_index() {
        for threads in [1, 2, 3, 8] {
            let got = parallel_indexed(13, threads, |i| i * i);
            let want: Vec<usize> = (0..13).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
        assert!(parallel_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn bench_threads_clamps_to_instance_count() {
        // Whatever the env/machine says, the clamp bounds hold.
        let t = bench_threads(3);
        assert!((1..=3).contains(&t));
        assert_eq!(bench_threads(0), 1);
    }

    #[test]
    fn cilk_lru_and_dfs_pipelines_produce_valid_schedules() {
        let params = quick_params();
        let named = &mbsp_gen::tiny_dataset(params.seed)[0];
        let instance = params.instance(named);
        let cilk = cilk_lru_schedule(&instance);
        cilk.validate(instance.dag(), instance.arch()).unwrap();
        let single = ExperimentParams {
            processors: 1,
            ..params
        };
        let instance1 = single.instance(named);
        let dfs = dfs_schedule(&instance1);
        dfs.validate(instance1.dag(), instance1.arch()).unwrap();
    }
}
