//! Theorem 4.1: on the two-group / two-chain construction, the two-stage approach
//! (optimal BSP schedule first, cache policy second) pays `Θ(d·m)` I/O, whereas the
//! holistic assignment (children of `H1` on one processor, children of `H2` on the
//! other) pays only `Θ(m + d)`. The binary evaluates both schedules for growing `d`
//! and prints the cost ratio, which grows linearly as the theorem states.

use mbsp_cache::{ClairvoyantPolicy, TwoStageScheduler};
use mbsp_gen::constructions::theorem41_construction;
use mbsp_ilp::improver::{canonical_bsp, post_optimize};
use mbsp_model::{sync_cost, Architecture, CostModel, ProcId};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};

fn main() {
    println!("## Theorem 4.1 — two-stage vs holistic on the chain/group construction\n");
    println!("| d | m | two-stage cost | holistic cost | ratio |");
    println!("|---:|---:|---:|---:|---:|");
    for d in [4usize, 8, 12, 16] {
        let m = 4 * d;
        let (dag, groups) = theorem41_construction(d, m);
        // r = d + 2, P = 2, g = 1, L = 0 as in the proof.
        let arch = Architecture::new(2, d as f64 + 2.0, 1.0, 0.0);
        let converter = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();

        // Two-stage: the BSP-optimal assignment puts one chain on each processor.
        let two_stage_bsp = {
            let mut procs = vec![ProcId::new(0); dag.num_nodes()];
            for &v in &groups.chain_u {
                procs[v.index()] = ProcId::new(1);
            }
            canonical_bsp(&dag, &arch, &procs)
        };
        let two_stage = converter.schedule(&dag, &arch, &two_stage_bsp, &policy);
        let two_stage_cost = sync_cost(&two_stage, &dag, &arch).total;

        // Holistic: all children of H1 on processor 0, all children of H2 on
        // processor 1 (the optimal MBSP strategy of the proof).
        let holistic_bsp = {
            let mut procs = vec![ProcId::new(0); dag.num_nodes()];
            for (i, (&u, &v)) in groups.chain_u.iter().zip(&groups.chain_v).enumerate() {
                // u_i reads H1 for odd (i+1), H2 for even; v_i the opposite.
                let (pu, pv) = if (i + 1) % 2 == 1 {
                    (ProcId::new(0), ProcId::new(1))
                } else {
                    (ProcId::new(1), ProcId::new(0))
                };
                procs[u.index()] = pu;
                procs[v.index()] = pv;
            }
            canonical_bsp(&dag, &arch, &procs)
        };
        let mut holistic = converter.schedule(&dag, &arch, &holistic_bsp, &policy);
        post_optimize(&mut holistic, &dag, &arch, CostModel::Synchronous, &[]);
        holistic.validate(&dag, &arch).unwrap();
        two_stage.validate(&dag, &arch).unwrap();
        let holistic_cost = sync_cost(&holistic, &dag, &arch).total;

        println!(
            "| {d} | {m} | {two_stage_cost:.0} | {holistic_cost:.0} | {:.2} |",
            two_stage_cost / holistic_cost
        );
    }
    // Also show what the generic pipeline (greedy BSP + clairvoyant) does.
    let (dag, _) = theorem41_construction(8, 32);
    let arch = Architecture::new(2, 10.0, 1.0, 0.0);
    let bsp = GreedyBspScheduler::new().schedule(&dag, &arch);
    let schedule = TwoStageScheduler::new().schedule(&dag, &arch, &bsp, &ClairvoyantPolicy::new());
    println!(
        "\ngreedy-BSP + clairvoyant on (d=8, m=32): cost {:.0}",
        sync_cost(&schedule, &dag, &arch).total
    );
}
