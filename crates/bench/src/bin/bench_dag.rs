//! Records the DAG-substrate benchmark baseline: the flattened hot paths (CSR
//! adjacency, bitset pebbles, scratch-based schedulers, arena conversion,
//! incremental evaluation) against the retained nested-Vec/clone-and-recost
//! reference paths, end to end, on large generated instances — written to
//! `BENCH_dag.json`.
//!
//! The measured pipeline is the full production sequence per instance:
//!
//! 1. **two-stage schedule** — greedy BSP scheduling (scratch-reusing fast path
//!    vs. [`mbsp_sched::reference::greedy_reference`]) plus the BSP→MBSP
//!    conversion and post-optimisation through an
//!    [`mbsp_ilp::EvaluationEngine`] (`EvalPath::Incremental` vs.
//!    `EvalPath::Reference`, i.e. arena + incremental deltas vs. fresh
//!    converter + full re-cost);
//! 2. **engine eval batch** — a fixed, deterministic batch of single-node
//!    relocation candidates evaluated through the same engine.
//!
//! Both paths are operation-identical: the BSP schedules, every candidate cost
//! and every materialised MBSP schedule must agree exactly (`costs_match` per
//! instance, asserted at the end). The recorded metric is pipeline evaluations
//! per second (schedule + baseline conversion + batch, normalised by the batch
//! size) and the fast/reference speedup, with the geometric mean as the
//! headline.
//!
//! Set `MBSP_BENCH_DAG_QUICK=1` for the CI smoke run (small instances, separate
//! output file). The JSON schema is `{benchmark, quick, instances: [{name,
//! nodes, edges, pipeline_evals, fast_seconds, reference_seconds, speedup,
//! fast_cost, reference_cost, costs_match}], geomean_speedup}`.

use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::NamedInstance;
use mbsp_ilp::{EvalPath, EvaluationEngine};
use mbsp_model::{Architecture, CostModel, MbspInstance, MbspSchedule, ProcId};
use mbsp_sched::{reference, BspScheduler, GreedyBspScheduler, SchedulerScratch};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    edges: usize,
    pipeline_evals: usize,
    fast_seconds: f64,
    reference_seconds: f64,
    fast_evals_per_sec: f64,
    reference_evals_per_sec: f64,
    speedup: f64,
    fast_cost: f64,
    reference_cost: f64,
    costs_match: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

/// The deterministic candidate batch: relocate `k` spread-out non-source nodes,
/// one at a time, to the next processor. Both paths evaluate the identical list.
fn candidate_assignments(
    instance: &MbspInstance,
    base: &[ProcId],
    batch: usize,
) -> Vec<Vec<ProcId>> {
    let dag = instance.dag();
    let p = instance.arch().processors;
    let movable: Vec<usize> = dag
        .nodes()
        .filter(|&v| !dag.is_source(v))
        .map(|v| v.index())
        .collect();
    (0..batch)
        .map(|k| {
            let i = movable[(k * movable.len()) / batch.max(1)];
            let mut procs = base.to_vec();
            procs[i] = ProcId::new((procs[i].index() + 1) % p);
            procs
        })
        .collect()
}

/// One full pipeline run: schedule, convert + post-optimise the baseline, then
/// evaluate the candidate batch. Returns (elapsed seconds, costs, schedules).
#[allow(clippy::type_complexity)]
fn run_pipeline(
    instance: &MbspInstance,
    path: EvalPath,
    batch: usize,
) -> (
    f64,
    Vec<f64>,
    Vec<MbspSchedule>,
    mbsp_sched::BspSchedulingResult,
) {
    let label = match path {
        EvalPath::Incremental | EvalPath::EagerMerge => "fast",
        EvalPath::Reference => "reference",
    };
    // Only the pipeline stages themselves are timed; the per-candidate schedule
    // clones that feed the costs_match comparison and the progress logging stay
    // outside the measured window.
    let mut timed = 0.0f64;
    let stage = Instant::now();
    let bsp = match path {
        EvalPath::Incremental | EvalPath::EagerMerge => {
            let mut scratch = SchedulerScratch::new();
            GreedyBspScheduler::new().schedule_with_scratch(
                instance.dag(),
                instance.arch(),
                &mut scratch,
            )
        }
        EvalPath::Reference => reference::greedy_reference(
            &mbsp_sched::greedy::GreedyBspConfig::default(),
            instance.dag(),
            instance.arch(),
        ),
    };
    timed += stage.elapsed().as_secs_f64();
    eprintln!(
        "    [{label}] greedy schedule: {timed:.2}s ({} supersteps)",
        bsp.schedule.num_supersteps()
    );
    let base: Vec<ProcId> = instance
        .dag()
        .nodes()
        .map(|v| bsp.schedule.proc_of(v))
        .collect();
    let candidates = candidate_assignments(instance, &base, batch);
    let mut engine = EvaluationEngine::new(instance, path);
    let mut costs = Vec::with_capacity(batch + 1);
    let mut schedules = Vec::with_capacity(batch + 1);
    let stage = Instant::now();
    costs.push(engine.evaluate_bsp(instance, &bsp, CostModel::Synchronous, &[]));
    timed += stage.elapsed().as_secs_f64();
    schedules.push(engine.schedule().clone());
    eprintln!("    [{label}] baseline conversion done: {timed:.2}s");
    for (i, procs) in candidates.iter().enumerate() {
        let stage = Instant::now();
        costs.push(engine.evaluate_assignment(instance, procs, CostModel::Synchronous, &[]));
        timed += stage.elapsed().as_secs_f64();
        schedules.push(engine.schedule().clone());
        eprintln!(
            "    [{label}] candidate {}/{} done: {timed:.2}s",
            i + 1,
            candidates.len(),
        );
    }
    (timed, costs, schedules, bsp)
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_DAG_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    let named: Vec<NamedInstance> = if quick {
        // CI smoke: two small instances, same pipeline, same assertions.
        vec![
            NamedInstance {
                name: "rand_L10_W40_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 10,
                        width: 40,
                        edge_probability: 0.1,
                        ..Default::default()
                    },
                    7,
                ),
            },
            NamedInstance {
                name: "rand_L20_W50_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 20,
                        width: 50,
                        edge_probability: 0.08,
                        ..Default::default()
                    },
                    8,
                ),
            },
        ]
    } else {
        mbsp_gen::large_dataset(42)
    };
    let mut reports = Vec::new();
    for inst in &named {
        // The eval batch scales down on the largest instances: the *reference*
        // path re-converts and re-costs the whole 100k-node schedule per
        // candidate, which is exactly the cost this benchmark documents.
        let batch = if quick || inst.dag.num_nodes() >= 50_000 {
            2
        } else {
            4
        };
        eprintln!(
            "== {} ({} nodes, {} edges, batch {batch})",
            inst.name,
            inst.dag.num_nodes(),
            inst.dag.num_edges()
        );
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            3.0,
        );
        let (fast_seconds, fast_costs, fast_schedules, fast_bsp) =
            run_pipeline(&instance, EvalPath::Incremental, batch);
        let (ref_seconds, ref_costs, ref_schedules, ref_bsp) =
            run_pipeline(&instance, EvalPath::Reference, batch);

        let costs_match = fast_bsp.schedule == ref_bsp.schedule
            && fast_bsp.order == ref_bsp.order
            && fast_costs.len() == ref_costs.len()
            && fast_costs
                .iter()
                .zip(&ref_costs)
                .all(|(a, b)| (a - b).abs() <= 1e-9 * (1.0 + b.abs()))
            && fast_schedules == ref_schedules;

        let evals = batch + 1;
        let fast_eps = evals as f64 / fast_seconds.max(1e-9);
        let ref_eps = evals as f64 / ref_seconds.max(1e-9);
        let speedup = ref_seconds / fast_seconds.max(1e-9);
        println!(
            "{:<18} {:>7} nodes {:>8} edges   fast {:>8.3}s   reference {:>8.3}s   ({:>5.1}x)   match: {}",
            inst.name,
            instance.dag().num_nodes(),
            instance.dag().num_edges(),
            fast_seconds,
            ref_seconds,
            speedup,
            costs_match
        );
        reports.push(InstanceReport {
            name: inst.name.clone(),
            nodes: instance.dag().num_nodes(),
            edges: instance.dag().num_edges(),
            pipeline_evals: evals,
            fast_seconds,
            reference_seconds: ref_seconds,
            fast_evals_per_sec: fast_eps,
            reference_evals_per_sec: ref_eps,
            speedup,
            fast_cost: *fast_costs.last().unwrap(),
            reference_cost: *ref_costs.last().unwrap(),
            costs_match,
        });
    }

    let geomean_speedup = geomean(reports.iter().map(|r| r.speedup));
    let report = Report {
        benchmark: "dag substrate: CSR/bitset/scratch pipeline vs nested-Vec reference paths"
            .to_string(),
        quick,
        instances: reports,
        geomean_speedup,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_dag_quick.json"
    } else {
        "BENCH_dag.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!("geomean speedup: {geomean_speedup:.2}x -> {path}");
    assert!(
        report.instances.iter().all(|r| r.costs_match),
        "fast and reference pipelines disagreed — see {path}"
    );
}
