//! Records the checkpoint codec baseline: binary encode/decode wall-clock of
//! full `mbsp_ilp::IncrementalScheduler` sessions (`mbsp_io` frame) on the
//! `large_dataset` instances — written to `BENCH_io.json`.
//!
//! Per instance the harness seeds an incremental session (greedy assignment,
//! standard repair configuration), lands a small localized delta stream so
//! the pending set and the mutated order are non-trivial — a checkpoint of a
//! freshly-built session would flatter the codec — then measures
//! (a) `checkpoint()` (encode) and (b) `IncrementalScheduler::restore`
//! (decode + full invariant re-validation), each as the minimum over `REPS`
//! runs. Two robustness flags ride along: `byte_identical` (the restored
//! session re-checkpoints to the exact original bytes — the property the
//! `checkpoint_session` suite pins functionally) and `corrupt_rejected` (a
//! truncation and a bit flip of the blob are both refused with a typed
//! [`DecodeError`](mbsp_ilp::DecodeError)).
//!
//! The headline acceptance bar applies to the production-scale (100k-node)
//! instances of the full run: encode and decode must each finish **under
//! 50 ms** — checkpointing has to be cheap enough to run at mutation-stream
//! cadence, not just at job boundaries. Byte identity and corruption
//! rejection are gated on every instance, quick or full.
//!
//! Set `MBSP_BENCH_IO_QUICK=1` for the CI smoke run (small instances,
//! separate output file). The JSON schema is `{benchmark, quick, instances:
//! [{name, nodes, edges, pending, blob_bytes, encode_seconds, decode_seconds,
//! encode_mb_per_s, decode_mb_per_s, byte_identical, corrupt_rejected}]}`.

use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::{mutation_stream, Corruption, MutationStreamConfig, NamedInstance};
use mbsp_ilp::{IncrementalScheduler, RepairConfig, ShardedSearchConfig};
use mbsp_model::{Architecture, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Wall-clock is the minimum over this many runs: checkpointing is pure CPU
/// (no I/O, no search), so the minimum is the least-noisy estimator.
const REPS: usize = 5;
/// The acceptance bar, per direction, on the 100k-node instances.
const BUDGET_SECONDS: f64 = 0.050;

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    edges: usize,
    pending: usize,
    blob_bytes: usize,
    encode_seconds: f64,
    decode_seconds: f64,
    encode_mb_per_s: f64,
    decode_mb_per_s: f64,
    byte_identical: bool,
    corrupt_rejected: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    instances: Vec<InstanceReport>,
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_IO_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    let named: Vec<NamedInstance> = if quick {
        vec![
            NamedInstance {
                name: "rand_L12_W50_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 12,
                        width: 50,
                        edge_probability: 0.08,
                        ..Default::default()
                    },
                    17,
                ),
            },
            NamedInstance {
                name: "rand_L20_W60_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 20,
                        width: 60,
                        edge_probability: 0.06,
                        ..Default::default()
                    },
                    18,
                ),
            },
        ]
    } else {
        mbsp_gen::large_dataset(42)
    };

    // Iteration helper: run only the instances whose name contains the filter.
    let only = std::env::var("MBSP_BENCH_IO_ONLY").unwrap_or_default();

    let mut reports = Vec::new();
    for inst in named
        .iter()
        .filter(|i| only.is_empty() || i.name.contains(&only))
    {
        let n = inst.dag.num_nodes();
        eprintln!(
            "== {} ({} nodes, {} edges)",
            inst.name,
            n,
            inst.dag.num_edges()
        );
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            3.0,
        );
        let baseline = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
        let procs = instance
            .dag()
            .nodes()
            .map(|v| baseline.schedule.proc_of(v))
            .collect();
        let mut sched = IncrementalScheduler::new(
            inst.dag.clone(),
            *instance.arch(),
            procs,
            RepairConfig {
                search: ShardedSearchConfig {
                    num_shards: 16,
                    workers: 4,
                    max_rounds: 20,
                    moves_per_round: 4,
                    time_limit: Duration::from_secs(3600),
                    ..Default::default()
                },
                cone_radius: 1,
            },
        );

        // Make the session state non-trivial: land a localized delta stream so
        // the checkpoint carries a real pending set and a mutated live order.
        // (The search itself is not run — this benchmark times the codec, and
        // the blob layout is identical either way.)
        let stream_config = MutationStreamConfig {
            ops: (n / 1000).clamp(4, 32),
            structural: false,
            locality: 0.01,
            ..Default::default()
        };
        for delta in &mutation_stream(sched.dag(), &stream_config, 0x10CDC) {
            sched
                .apply(delta)
                .expect("generated streams replay cleanly");
        }

        // (a) Encode: full session -> blob.
        let mut encode_seconds = f64::INFINITY;
        let mut blob = Vec::new();
        for _ in 0..REPS {
            let start = Instant::now();
            blob = sched.checkpoint();
            encode_seconds = encode_seconds.min(start.elapsed().as_secs_f64());
        }

        // (b) Decode: blob -> session, re-validating every invariant.
        let mut decode_seconds = f64::INFINITY;
        let mut restored = None;
        for _ in 0..REPS {
            let start = Instant::now();
            restored = Some(IncrementalScheduler::restore(&blob).expect("clean blob restores"));
            decode_seconds = decode_seconds.min(start.elapsed().as_secs_f64());
        }
        let byte_identical = restored.expect("REPS >= 1").checkpoint() == blob;

        // Robustness spot-checks: a mid-blob truncation and a payload bit flip
        // must both be refused with a typed error (the corrupted-checkpoint
        // corpus suite walks every section exhaustively; this keeps the
        // recorded artifact honest about the binary actually benchmarked).
        let truncated = Corruption::Truncate {
            offset: blob.len() / 2,
        }
        .apply(&blob);
        let flipped = Corruption::BitFlip {
            offset: blob.len() - 9,
            bit: 3,
        }
        .apply(&blob);
        let corrupt_rejected = IncrementalScheduler::restore(&truncated).is_err()
            && IncrementalScheduler::restore(&flipped).is_err();

        let mb = blob.len() as f64 / (1024.0 * 1024.0);
        println!(
            "{:<18} {:>7} nodes   {:>9} bytes   encode {:>8.3} ms   decode {:>8.3} ms   bytes==: {}   corrupt rejected: {}",
            inst.name,
            n,
            blob.len(),
            encode_seconds * 1e3,
            decode_seconds * 1e3,
            byte_identical,
            corrupt_rejected,
        );
        reports.push(InstanceReport {
            name: inst.name.clone(),
            nodes: n,
            edges: inst.dag.num_edges(),
            pending: sched.num_pending(),
            blob_bytes: blob.len(),
            encode_seconds,
            decode_seconds,
            encode_mb_per_s: mb / encode_seconds.max(1e-12),
            decode_mb_per_s: mb / decode_seconds.max(1e-12),
            byte_identical,
            corrupt_rejected,
        });
    }

    let report = Report {
        benchmark: "binary session checkpoint encode/decode (mbsp_io frame) with byte-identity \
                    and corruption-rejection flags"
            .to_string(),
        quick,
        instances: reports,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_io_quick.json"
    } else {
        "BENCH_io.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!("checkpoint codec report -> {path}");
    assert!(
        report.instances.iter().all(|r| r.byte_identical),
        "a restored session re-checkpointed to different bytes — see {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.corrupt_rejected),
        "a corrupted checkpoint was accepted — see {path}"
    );
    // The headline acceptance bar applies to the production-scale (100k-node)
    // instances of the full `large_dataset` run.
    if !quick {
        for r in report.instances.iter().filter(|r| r.nodes >= 100_000) {
            assert!(
                r.encode_seconds < BUDGET_SECONDS && r.decode_seconds < BUDGET_SECONDS,
                "{}: checkpoint codec over budget (encode {:.1} ms, decode {:.1} ms, bar {:.0} ms) — see {path}",
                r.name,
                r.encode_seconds * 1e3,
                r.decode_seconds * 1e3,
                BUDGET_SECONDS * 1e3
            );
        }
    }
}
