//! Records the incremental re-scheduling baseline: dirty-cone repair
//! (`mbsp_ilp::IncrementalScheduler`) against a full re-schedule after a small
//! localized `DagDelta` stream lands on an already-scheduled instance —
//! written to `BENCH_delta.json`.
//!
//! Per instance the harness warms an incremental scheduler to a steady state
//! (greedy + full sharded search, iterated under constant seed streams until a
//! pass accepts nothing — a fixed point of the search operator; untimed, since
//! a deployment amortizes it over its lifetime), streams a
//! seeded batch of reweight deltas touching well under 1%
//! of the nodes (`mbsp_gen::mutation_stream` with a tight locality window;
//! reweights keep node ids stable, so the dirty cone stays as local as the
//! mutation — structural deltas are exercised by the mutation-replay and
//! repair-determinism suites instead), then forks twins off the identical
//! post-mutation state and measures (a) `repair`, which re-searches only the
//! shards intersecting the mutation cone, and (b) the full re-schedule
//! (`full_repair`), which re-searches every shard with the same per-shard
//! budget and seed streams. Scope is the only variable between the two, so the
//! comparison isolates exactly what the dirty cone buys. The repair must reach
//! the full re-schedule's final cost on every measured instance — equal or
//! better up to `COST_TOLERANCE` (0.1%): from a converged incumbent the two
//! fold the same dirty-shard improvements, and the residual is the occasional
//! clean-shard proposal that flips from rejected to accepted under the
//! superstep-max coupling of the delta, which no hop-bounded cone can capture
//! (empirically <= 0.03% across the suite). The repair must also never regress
//! past its own stale incumbent (exactly), and stay byte-identical for any
//! worker count; the headline is the geomean wall-clock speedup of repair over
//! the full re-schedule (>= 5x on the full `large_dataset` run). A
//! from-scratch pipeline (fresh greedy baseline + full sharded search on the
//! mutated DAG) is also timed for context, but not gated: its greedy cascade
//! lands in an unrelated search basin, so its cost is noise around the warmed
//! steady state rather than a like-for-like comparator.
//!
//! Set `MBSP_BENCH_DELTA_QUICK=1` for the CI smoke run (small instances,
//! separate output file). The smoke gates determinism, incumbent
//! monotonicity and speedup but not `cost_ok`: on instances this small the
//! integer cost floor makes one flipped unit-weight proposal exceed any
//! sensible relative tolerance, so cost parity is asserted on the full
//! `large_dataset` run only. The JSON schema is `{benchmark, quick, shards,
//! cone_radius, instances: [{name, nodes, edges, delta_ops, touched_nodes,
//! cone_nodes, dirty_shards, shards, incumbent_cost, repair_cost, full_cost,
//! scratch_cost, repair_seconds, full_seconds, scratch_seconds, speedup,
//! cost_ok, not_worse_than_incumbent, identical_across_workers}],
//! geomean_speedup}`.

use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::{mutation_stream, MutationStreamConfig, NamedInstance};
use mbsp_ilp::{
    IncrementalScheduler, RepairConfig, ShardStrategy, ShardedHolisticScheduler,
    ShardedSearchConfig,
};
use mbsp_model::{Architecture, CostModel, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::{Duration, Instant};

/// More shards than `bench_shard`'s 16: the dirty set is bound by the
/// mutation window (2-3 shards regardless of the count), so a finer partition
/// shrinks what repair re-searches while the full re-search still covers
/// everything — the knob that makes "scope" a 10x lever instead of a 4x one.
const SHARDS: usize = 24;
/// Same deep hill-climb shape as `bench_shard`: one candidate per round, the
/// per-shard budget in rounds.
const SHARD_ROUNDS: usize = 40;
/// Cap on the fixed-point warm-up passes (each pass is one full re-search);
/// the loop normally stops much earlier, at the first pass accepting nothing.
const WARM_PASS_CAP: usize = 12;
const CONE_RADIUS: usize = 1;
/// Relative slack on `repair_cost <= full_cost`: the cross-shard residual of
/// clean-shard proposals flipping under the delta's global coupling (see the
/// module docs). Observed residuals are 3-30x smaller than this bound.
const COST_TOLERANCE: f64 = 1e-3;

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    edges: usize,
    delta_ops: usize,
    touched_nodes: usize,
    cone_nodes: usize,
    dirty_shards: usize,
    shards: usize,
    incumbent_cost: f64,
    repair_cost: f64,
    full_cost: f64,
    scratch_cost: f64,
    repair_seconds: f64,
    full_seconds: f64,
    scratch_seconds: f64,
    speedup: f64,
    cost_ok: bool,
    not_worse_than_incumbent: bool,
    identical_across_workers: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    shards: usize,
    cone_radius: usize,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

fn search_config(workers: usize) -> ShardedSearchConfig {
    ShardedSearchConfig {
        cost_model: CostModel::Synchronous,
        // This benchmark measures incremental-repair *latency*: keep the O(n)
        // topological partitioner and the single-pass pipeline, so a repair
        // pays no partition-ILP or shard-seeding overhead on top of its cone.
        // The weighted iterated pipeline is a batch-mode feature, benchmarked
        // by `bench_shard`.
        strategy: ShardStrategy::Topo,
        shard_local_seed: false,
        iterations: 1,
        num_shards: SHARDS,
        workers,
        max_rounds: SHARD_ROUNDS,
        moves_per_round: 1,
        time_limit: Duration::from_secs(3600),
        stale_round_limit: 0,
        ..Default::default()
    }
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_DELTA_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    let named: Vec<NamedInstance> = if quick {
        vec![
            NamedInstance {
                name: "rand_L12_W50_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 12,
                        width: 50,
                        edge_probability: 0.08,
                        ..Default::default()
                    },
                    17,
                ),
            },
            NamedInstance {
                name: "rand_L20_W60_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 20,
                        width: 60,
                        edge_probability: 0.06,
                        ..Default::default()
                    },
                    18,
                ),
            },
        ]
    } else {
        mbsp_gen::large_dataset(42)
    };

    // Iteration helper: run only the instances whose name contains the filter.
    let only = std::env::var("MBSP_BENCH_DELTA_ONLY").unwrap_or_default();

    let mut reports = Vec::new();
    for inst in named
        .iter()
        .filter(|i| only.is_empty() || i.name.contains(&only))
    {
        let n = inst.dag.num_nodes();
        eprintln!(
            "== {} ({} nodes, {} edges)",
            inst.name,
            n,
            inst.dag.num_edges()
        );
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            3.0,
        );
        let baseline = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());

        // Warm incumbent: greedy + full sharded search, then iterate the full
        // re-search to a *fixed point* of the (deterministic, constant-seed)
        // search operator: once a pass accepts nothing, re-searching a clean
        // shard re-evaluates exactly the proposals the fixed point already
        // rejected, and the scheduler's outcome cache holds every shard's
        // outcome at that state. This is the steady state an
        // incrementally-maintained deployment amortizes over its lifetime
        // (none of it is timed), and it is what makes the comparison
        // meaningful — post-mutation improvements exist only where the deltas
        // landed.
        let config = RepairConfig {
            search: search_config(4),
            cone_radius: CONE_RADIUS,
        };
        let warm_start = Instant::now();
        let (_, _, warm_procs) = ShardedHolisticScheduler::with_config(search_config(4))
            .schedule_with_assignment(&instance, &baseline);
        let mut repairer =
            IncrementalScheduler::new(inst.dag.clone(), *instance.arch(), warm_procs, config);
        let mut warm_passes = 0usize;
        loop {
            let (_, warm_stats) = repairer.full_repair();
            warm_passes += 1;
            if warm_stats.accepted_shards == 0 || warm_passes >= WARM_PASS_CAP {
                break;
            }
        }
        eprintln!(
            "    warm to fixed point: {warm_passes} passes in {:.2}s",
            warm_start.elapsed().as_secs_f64()
        );
        // A small localized delta: well under 1% of the nodes, clustered in a
        // tight topological window so the dirty cone stays small.
        let delta_ops = (n / 1000).clamp(4, 32);
        let stream_config = MutationStreamConfig {
            ops: delta_ops,
            structural: false,
            locality: 0.01,
            ..Default::default()
        };
        let stream = mutation_stream(repairer.dag(), &stream_config, 0xDE17A);

        // Land the deltas, then fork three twins off the identical
        // post-mutation state (same pending set, same outcome cache, same
        // seed streams): the measured repair, its 1-worker determinism check,
        // and the full re-search comparator. Scope — dirty cone vs every
        // shard — is the only variable between (a) and (b).
        let apply_start = Instant::now();
        for delta in &stream {
            repairer
                .apply(delta)
                .expect("generated streams replay cleanly");
        }
        let apply_seconds = apply_start.elapsed().as_secs_f64();
        let mut repairer_1w = repairer.clone();
        repairer_1w.config_mut().search.workers = 1;
        let mut full_twin = repairer.clone();

        // (a) Repair: re-search only the shards intersecting the dirty cone.
        let start = Instant::now();
        let (repaired, stats) = repairer.repair();
        let repair_seconds = apply_seconds + start.elapsed().as_secs_f64();
        let (repaired_1w, _) = repairer_1w.repair();
        let identical_across_workers = repaired == repaired_1w;
        eprintln!(
            "    repair: cost {:.1} (incumbent {:.1}) in {repair_seconds:.2}s, \
             {} touched -> {} cone nodes -> {}/{} dirty shards, {} evals",
            stats.final_cost,
            stats.incumbent_cost,
            stats.pending_nodes,
            stats.cone_nodes,
            stats.dirty_shards,
            stats.shards,
            stats.evaluations
        );

        // (b) The full re-schedule: re-search ALL shards from the same stale
        // incumbent with the same per-shard budget and seeds.
        let start = Instant::now();
        let (_, full_stats) = full_twin.full_repair();
        let full_seconds = apply_seconds + start.elapsed().as_secs_f64();
        let full_cost = full_stats.final_cost;
        eprintln!("    full re-search: cost {full_cost:.1} in {full_seconds:.2}s");

        // Informational only: what a from-scratch pipeline (greedy baseline +
        // full sharded search) reaches on the mutated DAG. Not gated — its
        // greedy cascade explores an unrelated basin, so its cost is noise
        // around the warmed steady state rather than a like-for-like
        // comparator.
        let mutated = repairer.dag().clone();
        let full_instance = MbspInstance::new(mutated, *instance.arch());
        let start = Instant::now();
        let scratch_baseline =
            GreedyBspScheduler::new().schedule(full_instance.dag(), full_instance.arch());
        let (_, scratch_stats) = ShardedHolisticScheduler::with_config(search_config(4))
            .schedule_with_stats(&full_instance, &scratch_baseline);
        let scratch_seconds = start.elapsed().as_secs_f64();
        let scratch_cost = scratch_stats.final_cost;
        eprintln!("    from-scratch re-schedule: cost {scratch_cost:.1} in {scratch_seconds:.2}s");

        repaired
            .validate(full_instance.dag(), full_instance.arch())
            .unwrap_or_else(|e| panic!("{}: repaired schedule invalid: {e}", inst.name));
        let cost_ok = stats.final_cost <= full_cost + COST_TOLERANCE * (1.0 + full_cost.abs());
        let not_worse_than_incumbent =
            stats.final_cost <= stats.incumbent_cost + 1e-9 * (1.0 + stats.incumbent_cost.abs());
        let speedup = full_seconds / repair_seconds.max(1e-9);

        println!(
            "{:<18} {:>7} nodes   repair {:>9.1} in {:>7.2}s   full {:>9.1} in {:>7.2}s   ({:>5.2}x)   <=full: {}   ==workers: {}",
            inst.name,
            n,
            stats.final_cost,
            repair_seconds,
            full_cost,
            full_seconds,
            speedup,
            cost_ok,
            identical_across_workers,
        );
        reports.push(InstanceReport {
            name: inst.name.clone(),
            nodes: n,
            edges: full_instance.dag().num_edges(),
            delta_ops: stream.len(),
            touched_nodes: stats.pending_nodes,
            cone_nodes: stats.cone_nodes,
            dirty_shards: stats.dirty_shards,
            shards: stats.shards,
            incumbent_cost: stats.incumbent_cost,
            repair_cost: stats.final_cost,
            full_cost,
            scratch_cost,
            repair_seconds,
            full_seconds,
            scratch_seconds,
            speedup,
            cost_ok,
            not_worse_than_incumbent,
            identical_across_workers,
        });
    }

    let geomean_speedup = geomean(reports.iter().map(|r| r.speedup));
    let report = Report {
        benchmark: "dirty-cone incremental repair vs full re-search from the same stale \
                    incumbent after localized DAG mutation"
            .to_string(),
        quick,
        shards: SHARDS,
        cone_radius: CONE_RADIUS,
        instances: reports,
        geomean_speedup,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_delta_quick.json"
    } else {
        "BENCH_delta.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!("geomean speedup: {geomean_speedup:.2}x -> {path}");
    assert!(
        report.instances.iter().all(|r| r.identical_across_workers),
        "dirty-cone repair diverged across worker counts — see {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.not_worse_than_incumbent),
        "dirty-cone repair regressed past its stale incumbent — see {path}"
    );
    // The headline acceptance bar applies to the full `large_dataset` run:
    // cost parity (within `COST_TOLERANCE`) with the full re-search on every
    // instance and at least a 5x geomean wall-clock win for small (<1% of
    // nodes) deltas.
    if !quick {
        for r in &report.instances {
            assert!(
                r.cost_ok,
                "{}: repair cost {:.1} fell behind the full re-schedule {:.1} — see {path}",
                r.name, r.repair_cost, r.full_cost
            );
        }
        assert!(
            geomean_speedup >= 5.0,
            "geomean repair speedup {geomean_speedup:.2}x below the 5x bar — see {path}"
        );
    }
}
