//! Section 7.2, single-processor experiment: with `P = 1` the problem is the
//! red–blue pebble game with compute costs. The baseline is a DFS ordering with the
//! clairvoyant eviction policy; the holistic scheduler rarely improves on it (the
//! paper reports improvements on only 2 of 15 instances), confirming that the
//! strength of the holistic approach lies in coupling *multiprocessor* scheduling
//! with memory management.

use mbsp_bench::{dfs_schedule, evaluate, ExperimentParams};
use mbsp_ilp::HolisticScheduler;
use mbsp_sched::{BspScheduler, DfsScheduler};

fn main() {
    let params = ExperimentParams {
        processors: 1,
        ..ExperimentParams::base()
    };
    let holistic = HolisticScheduler::with_config(params.holistic_config());
    println!("## P = 1 (red–blue pebbling with compute costs), r = 3·r0\n");
    println!("| Instance | DFS + clairvoyant | holistic | improved? |");
    println!("|---|---:|---:|:--:|");
    let mut improved_count = 0usize;
    let mut total = 0usize;
    for named in mbsp_gen::tiny_dataset(params.seed) {
        let instance = params.instance(&named);
        let base = evaluate(&instance, &dfs_schedule(&instance), &params);
        let bsp = DfsScheduler::new().schedule(instance.dag(), instance.arch());
        let ours = evaluate(&instance, &holistic.schedule(&instance, &bsp), &params);
        let improved = ours < base - 1e-9;
        if improved {
            improved_count += 1;
        }
        total += 1;
        println!(
            "| {} | {:.0} | {:.0} | {} |",
            named.name,
            base,
            ours,
            if improved { "yes" } else { "no" }
        );
    }
    println!("\nimproved on {improved_count} of {total} instances");
}
