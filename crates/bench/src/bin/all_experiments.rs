//! Runs the full experiment suite (all tables and figures) and writes the combined
//! markdown report to stdout. Individual experiments are available as separate
//! binaries (`table1` … `sync_vs_async`); this driver is what EXPERIMENTS.md was
//! produced with.

use mbsp_bench::{
    geometric_mean_ratio, render_table, run_small_dataset_comparison, run_tiny_comparison,
    ExperimentParams,
};
use mbsp_model::CostModel;

fn main() {
    let base = ExperimentParams::base();
    println!("# MBSP scheduling — experiment report\n");
    println!(
        "time budget per instance: {:?} (override with MBSP_BENCH_SECONDS)\n",
        base.time_limit
    );

    // Table 1.
    let rows = run_tiny_comparison(&base);
    println!(
        "{}",
        render_table("Table 1 — base setting (P=4, r=3·r0, L=10)", &rows)
    );

    // Table 4 / Figure 4 settings.
    let settings: Vec<(&str, ExperimentParams)> = vec![
        (
            "r = 5·r0",
            ExperimentParams {
                cache_factor: 5.0,
                ..base
            },
        ),
        (
            "r = r0",
            ExperimentParams {
                cache_factor: 1.0,
                ..base
            },
        ),
        (
            "P = 8",
            ExperimentParams {
                processors: 8,
                ..base
            },
        ),
        (
            "L = 0",
            ExperimentParams {
                latency: 0.0,
                ..base
            },
        ),
        (
            "async",
            ExperimentParams {
                latency: 0.0,
                cost_model: CostModel::Asynchronous,
                ..base
            },
        ),
    ];
    for (name, params) in &settings {
        let rows = run_tiny_comparison(params);
        println!(
            "{}",
            render_table(&format!("Table 4 / Figure 4 — {name}"), &rows)
        );
    }

    // Table 2 (divide and conquer on the larger sample).
    let params2 = ExperimentParams {
        cache_factor: 5.0,
        ..base
    };
    let rows2 = run_small_dataset_comparison(&params2);
    println!(
        "{}",
        render_table("Table 2 — divide-and-conquer on the larger dataset", &rows2)
    );
    println!(
        "overall divide-and-conquer geo-mean ratio: {:.2}x",
        geometric_mean_ratio(&rows2)
    );
}
