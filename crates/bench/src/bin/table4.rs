//! Table 4: baseline / holistic costs under alternative parameter settings —
//! `r = 5·r₀`, `r = r₀`, `P = 8`, `L = 0`, and the asynchronous cost model.

use mbsp_bench::{geometric_mean_ratio, run_tiny_comparison, ExperimentParams};
use mbsp_model::CostModel;

fn main() {
    let base = ExperimentParams::base();
    let settings: Vec<(&str, ExperimentParams)> = vec![
        (
            "r = 5·r0",
            ExperimentParams {
                cache_factor: 5.0,
                ..base
            },
        ),
        (
            "r = r0",
            ExperimentParams {
                cache_factor: 1.0,
                ..base
            },
        ),
        (
            "P = 8",
            ExperimentParams {
                processors: 8,
                ..base
            },
        ),
        (
            "L = 0",
            ExperimentParams {
                latency: 0.0,
                ..base
            },
        ),
        (
            "async",
            ExperimentParams {
                latency: 0.0,
                cost_model: CostModel::Asynchronous,
                ..base
            },
        ),
    ];
    let mut tables = Vec::new();
    for (name, params) in &settings {
        tables.push((name, run_tiny_comparison(params)));
    }
    println!("## Table 4 — baseline / holistic cost in alternative settings\n");
    print!("| Instance |");
    for (name, _) in &tables {
        print!(" {name} |");
    }
    println!();
    print!("|---|");
    for _ in &tables {
        print!("---:|");
    }
    println!();
    let num_instances = tables[0].1.len();
    for i in 0..num_instances {
        print!("| {} |", tables[0].1[i].instance);
        for (_, rows) in &tables {
            print!(" {:.0} / {:.0} |", rows[i].baseline, rows[i].ilp);
        }
        println!();
    }
    println!();
    for (name, rows) in &tables {
        println!(
            "{name}: geometric-mean cost reduction {:.2}x",
            geometric_mean_ratio(rows)
        );
    }
}
