//! Records the worker-pool benchmark baseline — the three comparisons behind
//! this PR's resident-pool + kernel + segment-tree stack, written to
//! `BENCH_pool.json`:
//!
//! 1. **Engine batches** (the headline `instances`/`speedup` section): a seeded
//!    hill climb over processor assignments on the `large_dataset` instances,
//!    evaluating each round's candidate batch end-to-end (canonical superstep
//!    reconstruction → arena conversion → per-candidate post-optimiser → true
//!    synchronous cost). The fast path runs [`EvalPath::Incremental`] engines
//!    (segment-tree merge session, chunked word kernels) on the resident
//!    [`WorkerPool`]; the reference path reproduces the pre-PR stack end to
//!    end — [`EvalPath::EagerMerge`] engines (the `O(S · P)`-shift merge), the
//!    retained one-word-at-a-time kernels (`kernels::set_scalar_mode`), the
//!    conversion arena's retained linear hot loops
//!    (`set_reference_conversion_mode`: full-cache eviction scans and the
//!    quadratic prefetch-window scan, the dominant per-candidate costs at a
//!    generous cache) and one `std::thread::scope` spawn per batch. Every round's
//!    winner and the final costs must be identical, and the pool path must
//!    stay byte-identical for 1, 4 and 8 workers — both asserted.
//! 2. **Kernels**: the chunked autovectorizable word kernels of
//!    `mbsp_model::kernels` against their retained scalar oracles on synthetic
//!    bitset slices (popcount, equality, the masked `parents ⊆ R_p` subset
//!    check), results asserted equal.
//! 3. **Improver**: the post-optimiser's segment-tree merge session
//!    ([`PostOptimizer::optimize`]) against the retained eager pass
//!    ([`PostOptimizer::optimize_eager`]) on the un-optimised two-stage
//!    conversions of the same instances, schedules and costs asserted
//!    bit-identical.
//!
//! Set `MBSP_BENCH_POOL_QUICK=1` for the CI smoke run (small instances,
//! separate `BENCH_pool_quick.json` output); `MBSP_BENCH_POOL_ONLY=<substr>`
//! restricts the run to matching instance names. The full run asserts the
//! headline geomean engine-batch speedup is at least 1.3x.

use mbsp_cache::{ClairvoyantPolicy, TwoStageScheduler};
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::NamedInstance;
use mbsp_ilp::engine::{
    evaluate_moves, evaluate_moves_scoped_on, EvalPath, EvaluationEngine, Move,
};
use mbsp_ilp::improver::PostOptimizer;
use mbsp_model::kernels::{
    masked_subset, masked_subset_scalar, popcount_words, popcount_words_scalar, words_equal,
    words_equal_scalar,
};
use mbsp_model::{Architecture, CostModel, MbspInstance, ProcId};
use mbsp_pool::WorkerPool;
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Worker/engine count of the timed fast-vs-reference comparison.
const WORKERS: usize = 4;
/// Pool-path worker counts whose results must stay byte-identical to the
/// [`WORKERS`]-worker run: serial and oversubscribed. (The 1/2/4/8 sweep lives
/// in `ilp/tests/shard_determinism.rs`; the bench re-checks the end-to-end
/// climb under the two extremes.)
const IDENTITY_WORKERS: [usize; 2] = [1, 8];
const SEED: u64 = 0x900_15EED;
/// Cache size as a multiple of the instance's minimal feasible size `r0`. A
/// generous cache is the merge-heavy regime: the conversion emits few forced
/// I/O splits, so adjacent supersteps rarely depend on each other's load
/// phases and the post-optimiser's fold pass does real work — which is
/// exactly the component this benchmark compares (at a tight cache the pass
/// finds near-zero valid folds on these instances and both paths degenerate
/// to the same scan). Fixed, not env-tunable: the recorded baseline must be
/// reproducible.
const CACHE_FACTOR: f64 = 100.0;

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    edges: usize,
    supersteps: usize,
    base_cost: f64,
    final_cost: f64,
    evaluations: u64,
    fast_seconds: f64,
    reference_seconds: f64,
    speedup: f64,
    costs_match: bool,
    identical_across_workers: bool,
}

#[derive(Debug, Serialize)]
struct KernelReport {
    name: String,
    words: usize,
    reps: usize,
    fast_seconds: f64,
    scalar_seconds: f64,
    speedup: f64,
    results_match: bool,
}

#[derive(Debug, Serialize)]
struct ImproverReport {
    name: String,
    supersteps_before: usize,
    supersteps_after: usize,
    session_seconds: f64,
    eager_seconds: f64,
    speedup: f64,
    costs_match: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    workers: usize,
    rounds: usize,
    moves_per_round: usize,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
    kernels: Vec<KernelReport>,
    geomean_kernel_speedup: f64,
    improver: Vec<ImproverReport>,
    geomean_improver_speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

/// Fragments a schedule into singleton-compute supersteps: each step's compute
/// phase is split one compute per step (per-processor order preserved), with
/// the save/delete/load phases kept on the last fragment. The result is valid
/// — the operation order is unchanged — and is exactly the fragmented shape
/// the merge pass folds back together, so it drives the session-vs-eager
/// comparison through a fold-heavy pass.
fn fragment(schedule: &mbsp_model::MbspSchedule) -> mbsp_model::MbspSchedule {
    use mbsp_model::{ProcPhases, Superstep};
    let p = schedule.processors();
    let mut out = mbsp_model::MbspSchedule::new(p);
    for step in schedule.supersteps() {
        let fragments = step
            .procs
            .iter()
            .map(|ph| ph.compute.len())
            .max()
            .unwrap_or(0)
            .max(1);
        for f in 0..fragments {
            let mut procs = vec![ProcPhases::empty(); p];
            for (pi, ph) in step.procs.iter().enumerate() {
                if let Some(&c) = ph.compute.get(f) {
                    procs[pi].compute.push(c);
                }
                if f == fragments - 1 {
                    procs[pi].save = ph.save.clone();
                    procs[pi].delete = ph.delete.clone();
                    procs[pi].load = ph.load.clone();
                }
            }
            out.push_superstep(Superstep { procs });
        }
    }
    out
}

/// Which batch runner a hill-climb run uses.
enum Backend<'a> {
    /// The resident worker pool (fast path).
    Pool(&'a WorkerPool),
    /// One `std::thread::scope` spawn per batch with the one-word-at-a-time
    /// scalar kernels — the complete pre-PR stack.
    Scoped,
}

/// Outcome of one seeded hill climb: the final cost plus the per-round winner
/// trace (compared across backends and worker counts for exact agreement).
struct ClimbOutcome {
    final_cost: f64,
    winners: Vec<Option<(f64, usize)>>,
    evaluations: u64,
    seconds: f64,
}

/// Runs the seeded hill climb: per round, propose a candidate batch from the
/// shared RNG stream, evaluate it end-to-end through the engines, and accept
/// the winner whenever it improves the incumbent. All randomness is fixed by
/// `SEED`, and the `(cost, index)` winner tie-break is worker-count
/// independent, so every backend and worker count must retrace the same climb.
#[allow(clippy::too_many_arguments)]
fn hill_climb(
    instance: &MbspInstance,
    base_procs: &[ProcId],
    base_cost: f64,
    path: EvalPath,
    backend: Backend<'_>,
    workers: usize,
    rounds: usize,
    moves_per_round: usize,
) -> ClimbOutcome {
    let dag = instance.dag();
    let arch = instance.arch();
    let movable: Vec<_> = dag.nodes().filter(|&v| !dag.is_source(v)).collect();
    let mut engines: Vec<EvaluationEngine> = (0..workers)
        .map(|_| EvaluationEngine::new(instance, path))
        .collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut procs = base_procs.to_vec();
    let mut current = base_cost;
    let mut winners = Vec::with_capacity(rounds);
    let mut evaluations = 0u64;
    let deadline = Instant::now() + Duration::from_secs(3600);
    // The scoped reference reproduces the pre-PR stack in full: the scalar
    // kernels and the arena's linear-scan prefetch membership test. Both forms
    // of each are operation-identical (differentially tested), so this changes
    // timings only, never winners or costs.
    let reference_stack = matches!(backend, Backend::Scoped);
    mbsp_model::kernels::set_scalar_mode(reference_stack);
    mbsp_cache::set_reference_conversion_mode(reference_stack);
    let start = Instant::now();
    let mut moves: Vec<Move> = Vec::with_capacity(moves_per_round);
    for _ in 0..rounds {
        moves.clear();
        for _ in 0..moves_per_round {
            if let Some(mv) = Move::propose(dag, arch, &procs, &movable, &mut rng) {
                moves.push(mv);
            }
        }
        let outcome = match backend {
            Backend::Pool(pool) => evaluate_moves(
                pool,
                &mut engines,
                instance,
                &procs,
                &moves,
                CostModel::Synchronous,
                &[],
                deadline,
            ),
            Backend::Scoped => evaluate_moves_scoped_on(
                &mut engines,
                dag,
                arch,
                &procs,
                &moves,
                CostModel::Synchronous,
                &[],
                deadline,
            ),
        };
        evaluations += outcome.evaluations;
        winners.push(outcome.winner);
        if let Some((cost, idx)) = outcome.winner {
            if cost < current {
                moves[idx].apply(dag, &mut procs);
                current = cost;
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    mbsp_model::kernels::set_scalar_mode(false);
    mbsp_cache::set_reference_conversion_mode(false);
    ClimbOutcome {
        final_cost: current,
        winners,
        evaluations,
        seconds,
    }
}

fn bench_kernels(quick: bool, rng: &mut StdRng) -> Vec<KernelReport> {
    use rand::Rng;
    let words_len = if quick { 1 << 10 } else { 1 << 12 };
    let reps = if quick { 400 } else { 20_000 };
    let a: Vec<u64> = (0..words_len).map(|_| rng.gen()).collect();
    let b = a.clone();
    let entries: Vec<u32> = (0..words_len)
        .map(|_| rng.gen_range(0..words_len as u32))
        .collect();
    let masks: Vec<u64> = entries.iter().map(|&w| a[w as usize]).collect();
    let mut reports = Vec::new();

    let mut fast_acc = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        fast_acc = fast_acc.wrapping_add(u64::from(popcount_words(std::hint::black_box(&a))));
    }
    let fast_seconds = start.elapsed().as_secs_f64();
    let mut scalar_acc = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        scalar_acc =
            scalar_acc.wrapping_add(u64::from(popcount_words_scalar(std::hint::black_box(&a))));
    }
    let scalar_seconds = start.elapsed().as_secs_f64();
    reports.push(KernelReport {
        name: "popcount_words".to_string(),
        words: words_len,
        reps,
        fast_seconds,
        scalar_seconds,
        speedup: scalar_seconds / fast_seconds.max(1e-12),
        results_match: fast_acc == scalar_acc,
    });

    let mut fast_eq = true;
    let start = Instant::now();
    for _ in 0..reps {
        fast_eq &= words_equal(std::hint::black_box(&a), std::hint::black_box(&b));
    }
    let fast_seconds = start.elapsed().as_secs_f64();
    let mut scalar_eq = true;
    let start = Instant::now();
    for _ in 0..reps {
        scalar_eq &= words_equal_scalar(std::hint::black_box(&a), std::hint::black_box(&b));
    }
    let scalar_seconds = start.elapsed().as_secs_f64();
    reports.push(KernelReport {
        name: "words_equal".to_string(),
        words: words_len,
        reps,
        fast_seconds,
        scalar_seconds,
        speedup: scalar_seconds / fast_seconds.max(1e-12),
        results_match: fast_eq == scalar_eq && fast_eq,
    });

    let mut fast_sub = true;
    let start = Instant::now();
    for _ in 0..reps {
        fast_sub &= masked_subset(
            std::hint::black_box(&a),
            std::hint::black_box(&entries),
            std::hint::black_box(&masks),
        );
    }
    let fast_seconds = start.elapsed().as_secs_f64();
    let mut scalar_sub = true;
    let start = Instant::now();
    for _ in 0..reps {
        scalar_sub &= masked_subset_scalar(
            std::hint::black_box(&a),
            std::hint::black_box(&entries),
            std::hint::black_box(&masks),
        );
    }
    let scalar_seconds = start.elapsed().as_secs_f64();
    reports.push(KernelReport {
        name: "masked_subset".to_string(),
        words: words_len,
        reps,
        fast_seconds,
        scalar_seconds,
        speedup: scalar_seconds / fast_seconds.max(1e-12),
        results_match: fast_sub == scalar_sub && fast_sub,
    });

    reports
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_POOL_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    let named: Vec<NamedInstance> = if quick {
        vec![
            NamedInstance {
                name: "rand_L10_W40_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 10,
                        width: 40,
                        edge_probability: 0.1,
                        ..Default::default()
                    },
                    7,
                ),
            },
            NamedInstance {
                name: "rand_L20_W50_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 20,
                        width: 50,
                        edge_probability: 0.08,
                        ..Default::default()
                    },
                    8,
                ),
            },
        ]
    } else {
        mbsp_gen::large_dataset(42)
    };
    let rounds = if quick { 2 } else { 4 };
    let moves_per_round = if quick { 6 } else { 8 };
    let improver_reps = if quick { 2 } else { 5 };

    // The resident pool, sized for the largest identity run and prewarmed so
    // lazy thread spawning is not billed to the first timed batch.
    let pool = WorkerPool::with_capacity(IDENTITY_WORKERS.iter().copied().max().unwrap());
    let _ = pool.run_batch((0..pool.capacity()).map(|i| move || i).collect::<Vec<_>>());

    // Iteration helper: run only the instances whose name contains the filter.
    let only = std::env::var("MBSP_BENCH_POOL_ONLY").unwrap_or_default();

    let mut instances = Vec::new();
    let mut improver = Vec::new();
    for inst in named
        .iter()
        .filter(|i| only.is_empty() || i.name.contains(&only))
    {
        eprintln!(
            "== {} ({} nodes, {} edges)",
            inst.name,
            inst.dag.num_nodes(),
            inst.dag.num_edges()
        );
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            CACHE_FACTOR,
        );
        let dag = instance.dag();
        let arch = instance.arch();
        let baseline = GreedyBspScheduler::new().schedule(dag, arch);
        let base_procs: Vec<ProcId> = dag.nodes().map(|v| baseline.schedule.proc_of(v)).collect();
        let base_cost = EvaluationEngine::new(&instance, EvalPath::Incremental)
            .evaluate_assignment(&instance, &base_procs, CostModel::Synchronous, &[]);

        // --- Section 1: end-to-end engine batches, pool vs scoped spawn. ---
        let reference = hill_climb(
            &instance,
            &base_procs,
            base_cost,
            EvalPath::EagerMerge,
            Backend::Scoped,
            WORKERS,
            rounds,
            moves_per_round,
        );
        let fast = hill_climb(
            &instance,
            &base_procs,
            base_cost,
            EvalPath::Incremental,
            Backend::Pool(&pool),
            WORKERS,
            rounds,
            moves_per_round,
        );
        let costs_match = fast.winners == reference.winners
            && fast.final_cost.to_bits() == reference.final_cost.to_bits();
        let mut identical_across_workers = true;
        for workers in IDENTITY_WORKERS {
            let run = hill_climb(
                &instance,
                &base_procs,
                base_cost,
                EvalPath::Incremental,
                Backend::Pool(&pool),
                workers,
                rounds,
                moves_per_round,
            );
            identical_across_workers &= run.winners == fast.winners
                && run.final_cost.to_bits() == fast.final_cost.to_bits();
        }
        let speedup = reference.seconds / fast.seconds.max(1e-9);
        eprintln!(
            "    batches: fast {:.3}s vs reference {:.3}s ({speedup:.2}x), final {:.1} \
             (base {base_cost:.1}), agree: {costs_match}, ==workers: {identical_across_workers}",
            fast.seconds, reference.seconds, fast.final_cost
        );

        // --- Section 3: segment-tree vs eager merge in the post-optimiser. ---
        // The merge-heavy input the pass exists for: the two-stage conversion,
        // fragmented into singleton-compute supersteps (the shape produced by
        // per-part schedule concatenation, which the merge pass folds back).
        let converted = fragment(&TwoStageScheduler::new().schedule(
            dag,
            arch,
            &baseline,
            &ClairvoyantPolicy::new(),
        ));
        converted
            .validate(dag, arch)
            .unwrap_or_else(|e| panic!("{}: fragmented schedule invalid: {e}", inst.name));
        let supersteps_before = converted.num_supersteps();
        let mut session_opt = PostOptimizer::new(dag, arch);
        let mut eager_opt = PostOptimizer::new(dag, arch);
        let mut session_seconds = 0.0;
        let mut eager_seconds = 0.0;
        let mut merge_costs_match = true;
        let mut supersteps_after = supersteps_before;
        for _ in 0..improver_reps {
            let mut s = converted.clone();
            let start = Instant::now();
            let sc = session_opt.optimize(&mut s, dag, arch, CostModel::Synchronous, &[]);
            session_seconds += start.elapsed().as_secs_f64();
            let mut e = converted.clone();
            let start = Instant::now();
            let ec = eager_opt.optimize_eager(&mut e, dag, arch, CostModel::Synchronous, &[]);
            eager_seconds += start.elapsed().as_secs_f64();
            merge_costs_match &= sc.to_bits() == ec.to_bits() && s == e;
            supersteps_after = s.num_supersteps();
        }
        let improver_speedup = eager_seconds / session_seconds.max(1e-9);
        eprintln!(
            "    improver: session {session_seconds:.3}s vs eager {eager_seconds:.3}s \
             ({improver_speedup:.2}x), {supersteps_before} -> {supersteps_after} steps, \
             agree: {merge_costs_match}"
        );
        improver.push(ImproverReport {
            name: inst.name.clone(),
            supersteps_before,
            supersteps_after,
            session_seconds,
            eager_seconds,
            speedup: improver_speedup,
            costs_match: merge_costs_match,
        });

        println!(
            "{:<18} {:>7} nodes   batches {:>6.2}s vs {:>6.2}s ({:>5.2}x)   improver {:>5.2}x   agree: {}",
            inst.name,
            dag.num_nodes(),
            fast.seconds,
            reference.seconds,
            speedup,
            improver_speedup,
            costs_match && merge_costs_match,
        );
        instances.push(InstanceReport {
            name: inst.name.clone(),
            nodes: dag.num_nodes(),
            edges: dag.num_edges(),
            supersteps: supersteps_before,
            base_cost,
            final_cost: fast.final_cost,
            evaluations: fast.evaluations,
            fast_seconds: fast.seconds,
            reference_seconds: reference.seconds,
            speedup,
            costs_match,
            identical_across_workers,
        });
    }

    // --- Section 2: chunked kernels vs scalar oracles. ---
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF00D);
    let kernels = bench_kernels(quick, &mut rng);
    for k in &kernels {
        eprintln!(
            "    kernel {:<16} {:.2}x (fast {:.4}s vs scalar {:.4}s), agree: {}",
            k.name, k.speedup, k.fast_seconds, k.scalar_seconds, k.results_match
        );
    }

    let geomean_speedup = geomean(instances.iter().map(|r| r.speedup));
    let geomean_kernel_speedup = geomean(kernels.iter().map(|r| r.speedup));
    let geomean_improver_speedup = geomean(improver.iter().map(|r| r.speedup));
    let report = Report {
        benchmark: "resident worker pool + vectorized kernels + segment-tree merge vs \
                    scoped-spawn batches with the eager merge"
            .to_string(),
        quick,
        workers: WORKERS,
        rounds,
        moves_per_round,
        instances,
        geomean_speedup,
        kernels,
        geomean_kernel_speedup,
        improver,
        geomean_improver_speedup,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_pool_quick.json"
    } else {
        "BENCH_pool.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!(
        "geomean speedup: {geomean_speedup:.2}x (kernels {geomean_kernel_speedup:.2}x, \
         improver {geomean_improver_speedup:.2}x) -> {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.costs_match),
        "pool and scoped-spawn engine batches diverged — see {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.identical_across_workers),
        "pool batches diverged across worker counts — see {path}"
    );
    assert!(
        report.kernels.iter().all(|r| r.results_match),
        "chunked kernels diverged from their scalar oracles — see {path}"
    );
    assert!(
        report.improver.iter().all(|r| r.costs_match),
        "segment-tree and eager merge passes diverged — see {path}"
    );
    // The headline acceptance bar of the full run: the new stack must win by
    // at least 1.3x geomean on the end-to-end engine batches.
    if !quick && only.is_empty() {
        assert!(
            geomean_speedup >= 1.3,
            "engine-batch geomean speedup {geomean_speedup:.2}x below the 1.3x bar — see {path}"
        );
    }
}
