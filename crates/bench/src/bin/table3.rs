//! Table 3: the five-column comparison on the tiny dataset — main baseline
//! (greedy BSP + clairvoyant), our holistic scheduler, the weak practical baseline
//! (Cilk + LRU), the stronger BSP-optimising baseline, and the holistic scheduler
//! seeded with that stronger baseline.

use mbsp_bench::{baseline_schedule, cilk_lru_schedule, evaluate, ExperimentParams};
use mbsp_cache::{ClairvoyantPolicy, TwoStageScheduler};
use mbsp_ilp::{BspIlpScheduler, HolisticScheduler};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};

fn main() {
    let params = ExperimentParams::base();
    let holistic = HolisticScheduler::with_config(params.holistic_config());
    let converter = TwoStageScheduler::new();
    let policy = ClairvoyantPolicy::new();

    println!("## Table 3 — all baselines and holistic variants (P=4, r=3·r0, L=10)\n");
    println!("| Instance | Baseline | Our ILP | Cilk+LRU | BSP-ILP base | BSP-ILP + our ILP |");
    println!("|---|---:|---:|---:|---:|---:|");
    let mut ratios: Vec<(f64, f64, f64, f64)> = Vec::new();
    for named in mbsp_gen::tiny_dataset(params.seed) {
        let instance = params.instance(&named);
        let base = evaluate(&instance, &baseline_schedule(&instance), &params);

        let greedy_bsp = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
        let ours = evaluate(
            &instance,
            &holistic.schedule(&instance, &greedy_bsp),
            &params,
        );

        let cilk = evaluate(&instance, &cilk_lru_schedule(&instance), &params);

        let bsp_ilp = BspIlpScheduler::new().schedule(instance.dag(), instance.arch());
        let bsp_ilp_base = evaluate(
            &instance,
            &converter.schedule(instance.dag(), instance.arch(), &bsp_ilp, &policy),
            &params,
        );
        let bsp_ilp_ours = evaluate(&instance, &holistic.schedule(&instance, &bsp_ilp), &params);

        println!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} |",
            named.name, base, ours, cilk, bsp_ilp_base, bsp_ilp_ours
        );
        ratios.push((
            ours / base,
            ours / cilk,
            bsp_ilp_ours / bsp_ilp_base,
            bsp_ilp_base / base,
        ));
    }
    type Ratios = (f64, f64, f64, f64);
    let geo = |select: &dyn Fn(&Ratios) -> f64| -> f64 {
        (ratios.iter().map(|r| select(r).ln()).sum::<f64>() / ratios.len() as f64).exp()
    };
    println!();
    println!(
        "geo-mean our-ILP / baseline:          {:.2}x",
        geo(&|r| r.0)
    );
    println!(
        "geo-mean our-ILP / (Cilk+LRU):        {:.2}x",
        geo(&|r| r.1)
    );
    println!(
        "geo-mean (BSP-ILP + ILP) / BSP-ILP:   {:.2}x",
        geo(&|r| r.2)
    );
    println!(
        "geo-mean BSP-ILP base / baseline:     {:.2}x",
        geo(&|r| r.3)
    );
}
