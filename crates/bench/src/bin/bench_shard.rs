//! Records the sharded-search benchmark baseline: the weight-aware iterated
//! sharded search (mass-balanced ILP shards → shard-local greedy seeds →
//! per-shard `EvaluationEngine` local searches → salvaging boundary-repaired
//! merge → re-partition with shifted cuts) against both the legacy topological
//! sharding of PR 5 and the single-incumbent holistic search, all at the
//! **same total candidate budget**, on the `large_dataset` instances — written
//! to `BENCH_shard.json`.
//!
//! All searches start from the same greedy BSP baseline and may spend up to
//! `TOTAL_MOVES` candidate evaluations. The single-incumbent search evaluates
//! every candidate against the whole graph (`O(V)` per conversion); both
//! sharded modes split the budget over `k` shards whose evaluations touch
//! only `O(V/k)` nodes. The weighted-iterated mode additionally spends part
//! of its budget on shard-local greedy seed candidates (one per shard per
//! iteration), so its hill-climb rounds are reduced to keep the total
//! candidate count identical to the legacy mode.
//!
//! Select what runs with `MBSP_BENCH_SHARD_MODE`: `legacy`, `weighted` or
//! `both` (default). Set `MBSP_BENCH_SHARD_QUICK=1` for the CI smoke run
//! (small instances, separate output file). The JSON schema is `{benchmark,
//! quick, mode, shards, total_move_budget, single_shape, legacy_shape,
//! weighted_shape, instances: [{name, nodes, edges, baseline_cost,
//! single_cost, single_seconds, single_evaluations, legacy: {cost, seconds,
//! seconds_1w, evaluations, identical_across_workers,
//! not_worse_than_baseline} | null, weighted: {cost, seconds, seconds_1w,
//! evaluations, iterations, salvaged_moves, cut_edges, shard_compute_mass,
//! identical_across_workers, not_worse_than_baseline, equal_or_better_than_legacy,
//! strictly_better_than_legacy} | null, sharded_cost, sharded_seconds,
//! speedup, equal_or_better, not_worse_than_baseline,
//! identical_across_workers}], geomean_speedup,
//! weighted_strictly_better_count}`. The flat `sharded_*`/`speedup` fields
//! describe the headline mode (weighted when it ran, legacy otherwise) so
//! downstream gates keep working across modes.

use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::NamedInstance;
use mbsp_ilp::{
    EvalPath, EvaluationEngine, HolisticConfig, HolisticScheduler, ShardStrategy,
    ShardedHolisticScheduler, ShardedSearchConfig, ShardedSearchStats,
};
use mbsp_model::{Architecture, CostModel, MbspInstance, MbspSchedule};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
/// Shared candidate budget: every search may evaluate at most this many moves.
const TOTAL_MOVES: usize = 144;
/// Single-incumbent shape: few rounds, wide best-of-72 batches.
const SINGLE_ROUNDS: usize = 2;
const SINGLE_MOVES_PER_ROUND: usize = TOTAL_MOVES / SINGLE_ROUNDS;
/// Legacy sharded shape (the PR 5 baseline): one pass of deep
/// one-candidate-per-round hill climbs, `4 shards × 36 rounds × 1 move`.
const LEGACY_ROUNDS: usize = TOTAL_MOVES / SHARDS;
/// Weighted-iterated shape: two partition/search/merge passes. Each shard
/// spends one candidate on its shard-local greedy seed, so the hill climb
/// gets one round fewer and the total candidate count stays at `TOTAL_MOVES`:
/// `2 iterations × 4 shards × (1 seed + 17 rounds × 1 move) = 144`.
const WEIGHTED_ITERATIONS: usize = 2;
const WEIGHTED_ROUNDS: usize = TOTAL_MOVES / (SHARDS * WEIGHTED_ITERATIONS) - 1;
const _: () = assert!(SHARDS * WEIGHTED_ITERATIONS * (WEIGHTED_ROUNDS + 1) == TOTAL_MOVES);
const SHARD_MOVES_PER_ROUND: usize = 1;

#[derive(Debug, Serialize)]
struct ShardedModeReport {
    cost: f64,
    seconds: f64,
    seconds_1w: f64,
    evaluations: u64,
    identical_across_workers: bool,
    not_worse_than_baseline: bool,
}

#[derive(Debug, Serialize)]
struct WeightedModeReport {
    base: ShardedModeReport,
    iterations: usize,
    salvaged_moves: u64,
    cut_edges: usize,
    shard_compute_mass: Vec<f64>,
    equal_or_better_than_legacy: Option<bool>,
    strictly_better_than_legacy: Option<bool>,
}

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    edges: usize,
    baseline_cost: f64,
    single_cost: f64,
    single_seconds: f64,
    single_evaluations: u64,
    legacy: Option<ShardedModeReport>,
    weighted: Option<WeightedModeReport>,
    // Headline fields (weighted when it ran, legacy otherwise) — the stable
    // surface the bench-regression gate keys on.
    sharded_cost: f64,
    sharded_seconds: f64,
    speedup: f64,
    equal_or_better: bool,
    not_worse_than_baseline: bool,
    identical_across_workers: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    mode: String,
    shards: usize,
    total_move_budget: usize,
    single_shape: String,
    legacy_shape: String,
    weighted_shape: String,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
    weighted_strictly_better_count: usize,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

/// Runs one sharded configuration at 1 worker and 4 workers, asserting
/// validity and collecting the byte-identity flag.
fn run_sharded(
    instance: &MbspInstance,
    baseline: &mbsp_sched::BspSchedulingResult,
    baseline_cost: f64,
    config: &dyn Fn(usize) -> ShardedSearchConfig,
    label: &str,
    name: &str,
) -> (ShardedModeReport, ShardedSearchStats, MbspSchedule) {
    let start = Instant::now();
    let (w1, _) =
        ShardedHolisticScheduler::with_config(config(1)).schedule_with_stats(instance, baseline);
    let seconds_1w = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (w4, stats) =
        ShardedHolisticScheduler::with_config(config(4)).schedule_with_stats(instance, baseline);
    let seconds = start.elapsed().as_secs_f64();
    let identical_across_workers = w1 == w4;
    w4.validate(instance.dag(), instance.arch())
        .unwrap_or_else(|e| panic!("{name}: {label} sharded schedule invalid: {e}"));
    let cost = stats.final_cost;
    let not_worse_than_baseline = cost <= baseline_cost + 1e-9 * (1.0 + baseline_cost.abs());
    eprintln!(
        "    {label} ({SHARDS} shards): cost {cost:.1}, {seconds:.2}s (1 worker: \
         {seconds_1w:.2}s), {} evals, {} improved / {} accepted shards, {} salvaged moves, \
         {} iterations",
        stats.evaluations,
        stats.improved_shards,
        stats.accepted_shards,
        stats.salvaged_moves,
        stats.iterations,
    );
    (
        ShardedModeReport {
            cost,
            seconds,
            seconds_1w,
            evaluations: stats.evaluations,
            identical_across_workers,
            not_worse_than_baseline,
        },
        stats,
        w4,
    )
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_SHARD_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);
    let mode = std::env::var("MBSP_BENCH_SHARD_MODE").unwrap_or_else(|_| "both".to_string());
    let (run_legacy, run_weighted) = match mode.as_str() {
        "legacy" => (true, false),
        "weighted" => (false, true),
        "both" | "" => (true, true),
        other => panic!("MBSP_BENCH_SHARD_MODE must be legacy|weighted|both, got {other:?}"),
    };

    let named: Vec<NamedInstance> = if quick {
        vec![
            NamedInstance {
                name: "rand_L10_W40_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 10,
                        width: 40,
                        edge_probability: 0.1,
                        ..Default::default()
                    },
                    7,
                ),
            },
            NamedInstance {
                name: "rand_L20_W50_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 20,
                        width: 50,
                        edge_probability: 0.08,
                        ..Default::default()
                    },
                    8,
                ),
            },
        ]
    } else {
        mbsp_gen::large_dataset(42)
    };

    let single_config = HolisticConfig {
        cost_model: CostModel::Synchronous,
        max_rounds: SINGLE_ROUNDS,
        moves_per_round: SINGLE_MOVES_PER_ROUND,
        time_limit: Duration::from_secs(3600),
        workers: 1,
        ..Default::default()
    };
    // The PR 5 baseline: equal node-count topological shards, no shard-local
    // seeds, one pass.
    let legacy_config = |workers: usize| ShardedSearchConfig {
        cost_model: CostModel::Synchronous,
        strategy: ShardStrategy::Topo,
        num_shards: SHARDS,
        workers,
        max_rounds: LEGACY_ROUNDS,
        moves_per_round: SHARD_MOVES_PER_ROUND,
        iterations: 1,
        shard_local_seed: false,
        time_limit: Duration::from_secs(3600),
        // Deep one-candidate rounds: one unlucky draw must not forfeit the
        // shard's remaining budget.
        stale_round_limit: 0,
        ..Default::default()
    };
    // The weight-aware iterated mode at the same total candidate count: each
    // shard's greedy seed candidate replaces one hill-climb round. The run
    // quotient's resolution scales with the instance: on the ≥10k-node
    // benchmark sizes a finer quotient (48 runs for 4 shards) is what lets
    // the partition ILP find cheap cuts aligned with the instance structure
    // (e.g. iteration boundaries of the iterated-SpMV family), while on the
    // small smoke instances the extra cuts are pure fragmentation.
    let weighted_config = |workers: usize, nodes: usize| ShardedSearchConfig {
        cost_model: CostModel::Synchronous,
        strategy: ShardStrategy::Weighted,
        num_shards: SHARDS,
        workers,
        max_rounds: WEIGHTED_ROUNDS,
        moves_per_round: SHARD_MOVES_PER_ROUND,
        iterations: WEIGHTED_ITERATIONS,
        shard_local_seed: true,
        runs_per_shard: if nodes >= 10_000 { 12 } else { 8 },
        time_limit: Duration::from_secs(3600),
        stale_round_limit: 0,
        ..Default::default()
    };

    // Iteration helper: run only the instances whose name contains the filter.
    let only = std::env::var("MBSP_BENCH_SHARD_ONLY").unwrap_or_default();

    let mut reports = Vec::new();
    for inst in named
        .iter()
        .filter(|i| only.is_empty() || i.name.contains(&only))
    {
        eprintln!(
            "== {} ({} nodes, {} edges)",
            inst.name,
            inst.dag.num_nodes(),
            inst.dag.num_edges()
        );
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            3.0,
        );
        let baseline = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
        // The shared starting incumbent all searches improve on.
        let baseline_cost = {
            let mut engine = EvaluationEngine::new(&instance, EvalPath::Incremental);
            let procs: Vec<_> = instance
                .dag()
                .nodes()
                .map(|v| baseline.schedule.proc_of(v))
                .collect();
            let a = engine.evaluate_assignment(&instance, &procs, CostModel::Synchronous, &[]);
            let b = engine.evaluate_bsp(&instance, &baseline, CostModel::Synchronous, &[]);
            a.min(b)
        };
        eprintln!("    baseline incumbent cost: {baseline_cost:.1}");

        let single = HolisticScheduler::with_config(single_config);
        let start = Instant::now();
        let (single_schedule, single_stats) =
            single.schedule_with_stats(&instance, &baseline, &[], EvalPath::Incremental);
        let single_seconds = start.elapsed().as_secs_f64();
        let single_cost = single_stats.final_cost;
        drop(single_schedule);
        eprintln!(
            "    single-incumbent: cost {single_cost:.1}, {single_seconds:.2}s, {} evals",
            single_stats.evaluations
        );

        let legacy = run_legacy.then(|| {
            run_sharded(
                &instance,
                &baseline,
                baseline_cost,
                &legacy_config,
                "legacy/topo",
                &inst.name,
            )
            .0
        });
        let weighted = run_weighted.then(|| {
            let nodes = instance.dag().num_nodes();
            let (base, stats, _) = run_sharded(
                &instance,
                &baseline,
                baseline_cost,
                &|workers| weighted_config(workers, nodes),
                "weighted-iterated",
                &inst.name,
            );
            let tol = |c: f64| 1e-9 * (1.0 + c.abs());
            let equal_or_better_than_legacy =
                legacy.as_ref().map(|l| base.cost <= l.cost + tol(l.cost));
            let strictly_better_than_legacy =
                legacy.as_ref().map(|l| base.cost < l.cost - tol(l.cost));
            WeightedModeReport {
                base,
                iterations: stats.iterations,
                salvaged_moves: stats.salvaged_moves,
                cut_edges: stats.cut_edges,
                shard_compute_mass: stats.shard_compute_mass,
                equal_or_better_than_legacy,
                strictly_better_than_legacy,
            }
        });

        // Headline mode for the stable gate surface.
        let (sharded_cost, sharded_seconds, not_worse, identical) = match (&weighted, &legacy) {
            (Some(w), _) => (
                w.base.cost,
                w.base.seconds,
                w.base.not_worse_than_baseline,
                w.base.identical_across_workers,
            ),
            (None, Some(l)) => (
                l.cost,
                l.seconds,
                l.not_worse_than_baseline,
                l.identical_across_workers,
            ),
            (None, None) => unreachable!("at least one sharded mode always runs"),
        };
        let equal_or_better = sharded_cost <= single_cost + 1e-9 * (1.0 + single_cost.abs());
        let speedup = single_seconds / sharded_seconds.max(1e-9);

        println!(
            "{:<18} {:>7} nodes   single {:>9.1}   legacy {:>9}   weighted {:>9}   ({:>5.2}x)   <=single: {}   ==workers: {}",
            inst.name,
            instance.dag().num_nodes(),
            single_cost,
            legacy
                .as_ref()
                .map_or("-".to_string(), |l| format!("{:.1}", l.cost)),
            weighted
                .as_ref()
                .map_or("-".to_string(), |w| format!("{:.1}", w.base.cost)),
            speedup,
            equal_or_better,
            identical,
        );
        reports.push(InstanceReport {
            name: inst.name.clone(),
            nodes: instance.dag().num_nodes(),
            edges: instance.dag().num_edges(),
            baseline_cost,
            single_cost,
            single_seconds,
            single_evaluations: single_stats.evaluations,
            legacy,
            weighted,
            sharded_cost,
            sharded_seconds,
            speedup,
            equal_or_better,
            not_worse_than_baseline: not_worse,
            identical_across_workers: identical,
        });
    }

    let geomean_speedup = geomean(reports.iter().map(|r| r.speedup));
    let weighted_strictly_better_count = reports
        .iter()
        .filter(|r| {
            r.weighted
                .as_ref()
                .and_then(|w| w.strictly_better_than_legacy)
                .unwrap_or(false)
        })
        .count();
    let report = Report {
        benchmark: "weight-aware iterated sharded search vs legacy topological sharding and \
                    single-incumbent search at equal candidate budget"
            .to_string(),
        quick,
        mode: mode.clone(),
        shards: SHARDS,
        total_move_budget: TOTAL_MOVES,
        single_shape: format!("{SINGLE_ROUNDS} rounds x {SINGLE_MOVES_PER_ROUND} moves"),
        legacy_shape: format!(
            "{SHARDS} shards x {LEGACY_ROUNDS} rounds x {SHARD_MOVES_PER_ROUND} moves"
        ),
        weighted_shape: format!(
            "{WEIGHTED_ITERATIONS} iterations x {SHARDS} shards x (1 seed + {WEIGHTED_ROUNDS} \
             rounds x {SHARD_MOVES_PER_ROUND} moves)"
        ),
        instances: reports,
        geomean_speedup,
        weighted_strictly_better_count,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_shard_quick.json"
    } else {
        "BENCH_shard.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!(
        "geomean speedup: {geomean_speedup:.2}x, weighted strictly better on \
         {weighted_strictly_better_count} instances -> {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.identical_across_workers),
        "sharded search diverged across worker counts — see {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.not_worse_than_baseline),
        "sharded search fell behind the shared baseline incumbent — see {path}"
    );
    // The full-run acceptance bar for the weighted-iterated mode: never worse
    // than the legacy sharding at the same candidate budget, strictly better
    // on at least half the dataset (the aggregate count only applies to an
    // unfiltered run).
    if !quick && run_legacy && run_weighted {
        for r in &report.instances {
            let w = r.weighted.as_ref().expect("weighted mode ran");
            assert!(
                w.equal_or_better_than_legacy.unwrap_or(true),
                "{}: weighted-iterated cost {:.1} fell behind the legacy sharding {:.1} — \
                 see {path}",
                r.name,
                w.base.cost,
                r.legacy.as_ref().map_or(f64::NAN, |l| l.cost)
            );
        }
        assert!(
            !only.is_empty() || weighted_strictly_better_count >= 3,
            "weighted-iterated mode strictly better on only \
             {weighted_strictly_better_count}/{} instances (need >= 3) — see {path}",
            report.instances.len()
        );
    }
    // The headline acceptance bar applies to the production-scale (100k-node)
    // instances of the full run: equal-or-better final cost than the
    // single-incumbent search at the same move budget, with at least a 2x
    // wall-clock win at 4 workers.
    if !quick {
        for r in report.instances.iter().filter(|r| r.nodes >= 100_000) {
            assert!(
                r.equal_or_better,
                "{}: sharded cost {:.1} fell behind the single-incumbent {:.1} — see {path}",
                r.name, r.sharded_cost, r.single_cost
            );
            assert!(
                r.speedup >= 2.0,
                "{}: sharded speedup {:.2}x below the 2x bar at 4 workers — see {path}",
                r.name,
                r.speedup
            );
        }
    }
}
