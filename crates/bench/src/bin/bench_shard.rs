//! Records the sharded-search benchmark baseline: the sharded holistic search
//! (topological shards → zero-copy `SubDagView` sub-problems → per-shard
//! `EvaluationEngine` local searches → deterministic boundary-repaired merge)
//! against the single-incumbent holistic search, at the **same total move
//! budget**, on the `large_dataset` instances — written to `BENCH_shard.json`.
//!
//! Both searches start from the same greedy BSP baseline and may spend up to
//! `rounds · total_moves_per_round` candidate evaluations: the single-incumbent
//! search evaluates every candidate against the whole graph (`O(V)` per
//! conversion), the sharded search splits the same per-round budget over `k`
//! shards whose evaluations touch only `O(V/k)` nodes. The recorded speedup is
//! therefore algorithmic — it holds even on a single core — and the sharded
//! final cost must be equal-or-better on the 100k-node instances while staying
//! byte-identical for any worker count (both asserted at the end).
//!
//! Both searches spend the same `TOTAL_MOVES` candidate budget, in the shape
//! that suits them: the single-incumbent search as wide best-of-N rounds (its
//! expensive global evaluations only pay off when each one is selective), the
//! sharded search as deep one-candidate-per-round hill climbs per shard (its
//! cheap local evaluations make many small accepted steps the better spend).
//!
//! Set `MBSP_BENCH_SHARD_QUICK=1` for the CI smoke run (small instances,
//! separate output file). The JSON schema is `{benchmark, quick, shards,
//! total_move_budget, single_shape, sharded_shape, instances: [{name, nodes,
//! edges, baseline_cost, single_cost, sharded_cost, single_seconds,
//! sharded_seconds_1w, sharded_seconds, speedup, single_evaluations,
//! sharded_evaluations, equal_or_better, not_worse_than_baseline,
//! identical_across_workers}], geomean_speedup}`.

use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_gen::NamedInstance;
use mbsp_ilp::{
    EvalPath, EvaluationEngine, HolisticConfig, HolisticScheduler, ShardedHolisticScheduler,
    ShardedSearchConfig,
};
use mbsp_model::{Architecture, CostModel, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
/// Shared candidate budget: both searches may evaluate at most this many moves.
const TOTAL_MOVES: usize = 144;
/// Single-incumbent shape: few rounds, wide best-of-24 batches.
const SINGLE_ROUNDS: usize = 2;
const SINGLE_MOVES_PER_ROUND: usize = TOTAL_MOVES / SINGLE_ROUNDS;
/// Sharded shape: the same total budget spent as deep per-shard hill climbs
/// (one candidate per round) — cheap `O(V/k)` evaluations make many small
/// accepted steps the winning use of the budget.
const SHARD_ROUNDS: usize = TOTAL_MOVES / SHARDS;
const SHARD_MOVES_PER_ROUND: usize = 1;

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    edges: usize,
    baseline_cost: f64,
    single_cost: f64,
    sharded_cost: f64,
    single_seconds: f64,
    sharded_seconds_1w: f64,
    sharded_seconds: f64,
    speedup: f64,
    single_evaluations: u64,
    sharded_evaluations: u64,
    equal_or_better: bool,
    not_worse_than_baseline: bool,
    identical_across_workers: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    shards: usize,
    total_move_budget: usize,
    single_shape: String,
    sharded_shape: String,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_SHARD_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    let named: Vec<NamedInstance> = if quick {
        vec![
            NamedInstance {
                name: "rand_L10_W40_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 10,
                        width: 40,
                        edge_probability: 0.1,
                        ..Default::default()
                    },
                    7,
                ),
            },
            NamedInstance {
                name: "rand_L20_W50_quick".to_string(),
                family: "random",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 20,
                        width: 50,
                        edge_probability: 0.08,
                        ..Default::default()
                    },
                    8,
                ),
            },
        ]
    } else {
        mbsp_gen::large_dataset(42)
    };

    let single_config = HolisticConfig {
        cost_model: CostModel::Synchronous,
        max_rounds: SINGLE_ROUNDS,
        moves_per_round: SINGLE_MOVES_PER_ROUND,
        time_limit: Duration::from_secs(3600),
        workers: 1,
        ..Default::default()
    };
    let sharded_config = |workers: usize| ShardedSearchConfig {
        cost_model: CostModel::Synchronous,
        num_shards: SHARDS,
        workers,
        max_rounds: SHARD_ROUNDS,
        moves_per_round: SHARD_MOVES_PER_ROUND,
        time_limit: Duration::from_secs(3600),
        // Deep one-candidate rounds: one unlucky draw must not forfeit the
        // shard's remaining budget.
        stale_round_limit: 0,
        ..Default::default()
    };

    // Iteration helper: run only the instances whose name contains the filter.
    let only = std::env::var("MBSP_BENCH_SHARD_ONLY").unwrap_or_default();

    let mut reports = Vec::new();
    for inst in named
        .iter()
        .filter(|i| only.is_empty() || i.name.contains(&only))
    {
        eprintln!(
            "== {} ({} nodes, {} edges)",
            inst.name,
            inst.dag.num_nodes(),
            inst.dag.num_edges()
        );
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            3.0,
        );
        let baseline = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
        // The shared starting incumbent both searches improve on.
        let baseline_cost = {
            let mut engine = EvaluationEngine::new(&instance, EvalPath::Incremental);
            let procs: Vec<_> = instance
                .dag()
                .nodes()
                .map(|v| baseline.schedule.proc_of(v))
                .collect();
            let a = engine.evaluate_assignment(&instance, &procs, CostModel::Synchronous, &[]);
            let b = engine.evaluate_bsp(&instance, &baseline, CostModel::Synchronous, &[]);
            a.min(b)
        };
        eprintln!("    baseline incumbent cost: {baseline_cost:.1}");

        let single = HolisticScheduler::with_config(single_config);
        let start = Instant::now();
        let (single_schedule, single_stats) =
            single.schedule_with_stats(&instance, &baseline, &[], EvalPath::Incremental);
        let single_seconds = start.elapsed().as_secs_f64();
        let single_cost = single_stats.final_cost;
        drop(single_schedule);
        eprintln!(
            "    single-incumbent: cost {single_cost:.1}, {single_seconds:.2}s, {} evals",
            single_stats.evaluations
        );

        let start = Instant::now();
        let (sharded_w1, _) = ShardedHolisticScheduler::with_config(sharded_config(1))
            .schedule_with_stats(&instance, &baseline);
        let sharded_seconds_1w = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let (sharded_w4, sharded_stats) = ShardedHolisticScheduler::with_config(sharded_config(4))
            .schedule_with_stats(&instance, &baseline);
        let sharded_seconds = start.elapsed().as_secs_f64();
        let sharded_cost = sharded_stats.final_cost;
        let identical_across_workers = sharded_w1 == sharded_w4;
        sharded_w4
            .validate(instance.dag(), instance.arch())
            .unwrap_or_else(|e| panic!("{}: sharded schedule invalid: {e}", inst.name));
        let equal_or_better = sharded_cost <= single_cost + 1e-9 * (1.0 + single_cost.abs());
        let not_worse_than_baseline =
            sharded_cost <= baseline_cost + 1e-9 * (1.0 + baseline_cost.abs());
        let speedup = single_seconds / sharded_seconds.max(1e-9);
        eprintln!(
            "    sharded ({SHARDS} shards): cost {sharded_cost:.1}, {sharded_seconds:.2}s \
             (1 worker: {sharded_seconds_1w:.2}s), {} evals, {} improved / {} accepted shards, \
             speedup {speedup:.2}x",
            sharded_stats.evaluations, sharded_stats.improved_shards, sharded_stats.accepted_shards,
        );

        println!(
            "{:<18} {:>7} nodes   single {:>9.1} in {:>7.2}s   sharded {:>9.1} in {:>7.2}s   ({:>5.2}x)   <=: {}   ==workers: {}",
            inst.name,
            instance.dag().num_nodes(),
            single_cost,
            single_seconds,
            sharded_cost,
            sharded_seconds,
            speedup,
            equal_or_better,
            identical_across_workers,
        );
        reports.push(InstanceReport {
            name: inst.name.clone(),
            nodes: instance.dag().num_nodes(),
            edges: instance.dag().num_edges(),
            baseline_cost,
            single_cost,
            sharded_cost,
            single_seconds,
            sharded_seconds_1w,
            sharded_seconds,
            speedup,
            single_evaluations: single_stats.evaluations,
            sharded_evaluations: sharded_stats.evaluations,
            equal_or_better,
            not_worse_than_baseline,
            identical_across_workers,
        });
    }

    let geomean_speedup = geomean(reports.iter().map(|r| r.speedup));
    let report = Report {
        benchmark: "sharded holistic search over zero-copy sub-DAG views vs single-incumbent \
                    search at equal move budget"
            .to_string(),
        quick,
        shards: SHARDS,
        total_move_budget: TOTAL_MOVES,
        single_shape: format!("{SINGLE_ROUNDS} rounds x {SINGLE_MOVES_PER_ROUND} moves"),
        sharded_shape: format!(
            "{SHARDS} shards x {SHARD_ROUNDS} rounds x {SHARD_MOVES_PER_ROUND} moves"
        ),
        instances: reports,
        geomean_speedup,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_shard_quick.json"
    } else {
        "BENCH_shard.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!("geomean speedup: {geomean_speedup:.2}x -> {path}");
    assert!(
        report.instances.iter().all(|r| r.identical_across_workers),
        "sharded search diverged across worker counts — see {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.not_worse_than_baseline),
        "sharded search fell behind the shared baseline incumbent — see {path}"
    );
    // The headline acceptance bar applies to the production-scale (100k-node)
    // instances of the full run: equal-or-better final cost than the
    // single-incumbent search at the same move budget, with at least a 2x
    // wall-clock win at 4 workers.
    if !quick {
        for r in report.instances.iter().filter(|r| r.nodes >= 100_000) {
            assert!(
                r.equal_or_better,
                "{}: sharded cost {:.1} fell behind the single-incumbent {:.1} — see {path}",
                r.name, r.sharded_cost, r.single_cost
            );
            assert!(
                r.speedup >= 2.0,
                "{}: sharded speedup {:.2}x below the 2x bar at 4 workers — see {path}",
                r.name,
                r.speedup
            );
        }
    }
}
