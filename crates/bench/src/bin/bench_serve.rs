//! Records the serving-path baseline: end-to-end latency and throughput of
//! the `mbsp_serve` daemon under concurrent scheduling clients — written to
//! `BENCH_serve.json`.
//!
//! Per scenario the harness starts an in-process [`mbsp_serve::Server`] on an
//! ephemeral port with a private state directory, registers one family
//! instance, and fans out `CLIENTS` real TCP connections that each submit a
//! streaming `schedule` request at the same fixed budget. Wall-clock is the
//! minimum over `REPS` fan-outs (each rep is a fresh daemon, so the number
//! includes accept/register/session-spin-up, not just the hot path). Two
//! correctness flags ride along and are gated: `incumbents_monotone` (every
//! client observed a strictly-decreasing incumbent stream with contiguous
//! sequence numbers, finishing at the `done` cost) and `final_byte_identical`
//! (every served schedule serialized byte-for-byte equal to a direct
//! [`ShardedHolisticScheduler`] run on
//! the same DAG at the same budget — serving adds batching and transport, not
//! nondeterminism).
//!
//! Set `MBSP_BENCH_SERVE_QUICK=1` for the CI smoke run (smaller instances and
//! fan-out, separate output file). The JSON schema is `{benchmark, quick,
//! scenarios: [{name, nodes, edges, clients, total_seconds,
//! requests_per_second, mean_latency_seconds, incumbent_frames,
//! incumbents_monotone, final_byte_identical}]}`.

use mbsp_gen::cg::cg_dag;
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_ilp::{ShardedHolisticScheduler, ShardedSearchConfig};
use mbsp_model::{Architecture, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use mbsp_serve::{Server, ServerConfig};
use serde::{map_get, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Each scenario's fan-out is repeated this many times; wall-clock is the
/// minimum (serving is latency-bound, so the minimum is the least-noisy
/// estimator of the achievable rate).
const REPS: usize = 3;

/// One registered instance exercised by a fan-out of scheduling clients.
struct Scenario {
    name: &'static str,
    dag: mbsp_dag::CompDag,
    clients: usize,
}

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: String,
    nodes: usize,
    edges: usize,
    clients: usize,
    total_seconds: f64,
    requests_per_second: f64,
    mean_latency_seconds: f64,
    incumbent_frames: usize,
    incumbents_monotone: bool,
    final_byte_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    scenarios: Vec<ScenarioReport>,
}

/// The fixed budget every request runs at — explicit shard count so the
/// recorded baseline is machine-independent.
fn budget() -> ShardedSearchConfig {
    ShardedSearchConfig {
        num_shards: 4,
        seed: 11,
        max_rounds: 6,
        moves_per_round: 8,
        iterations: 2,
        stale_round_limit: 0,
        ..ShardedSearchConfig::default()
    }
}

const BUDGET_JSON: &str = r#""num_shards":4,"seed":11,"max_rounds":6,"moves_per_round":8,"iterations":2,"stale_round_limit":0"#;

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_SERVE_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    let scenarios = if quick {
        vec![
            Scenario {
                name: "cg_n4_k2_c4",
                dag: cg_dag("cg", 4, 2),
                clients: 4,
            },
            Scenario {
                name: "rand_L5_W6_c4",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 5,
                        width: 6,
                        edge_probability: 0.35,
                        ..Default::default()
                    },
                    7,
                ),
                clients: 4,
            },
        ]
    } else {
        vec![
            Scenario {
                name: "cg_n8_k3_c8",
                dag: cg_dag("cg", 8, 3),
                clients: 8,
            },
            Scenario {
                name: "rand_L12_W20_c8",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 12,
                        width: 20,
                        edge_probability: 0.12,
                        ..Default::default()
                    },
                    7,
                ),
                clients: 8,
            },
            Scenario {
                name: "rand_L12_W20_c16",
                dag: random_layered_dag(
                    &RandomDagConfig {
                        layers: 12,
                        width: 20,
                        edge_probability: 0.12,
                        ..Default::default()
                    },
                    7,
                ),
                clients: 16,
            },
        ]
    };

    let mut reports = Vec::new();
    for scenario in &scenarios {
        // The direct-run reference all served schedules must match.
        let base = Architecture::new(4, 0.0, 1.0, 2.0);
        let arch = *MbspInstance::with_cache_factor(scenario.dag.clone(), base, 3.0).arch();
        let baseline = GreedyBspScheduler::new().schedule(&scenario.dag, &arch);
        let instance = MbspInstance::new(scenario.dag.clone(), arch);
        let (reference, _, _) = ShardedHolisticScheduler::with_config(budget())
            .schedule_with_assignment(&instance, &baseline);
        let reference = serde_json::to_string(&reference).expect("schedule serializes");

        let mut best = f64::INFINITY;
        let mut best_outcome = FanOutOutcome::default();
        for _ in 0..REPS {
            let (seconds, outcome) = run_fan_out(scenario, &reference);
            if seconds < best {
                best = seconds;
                best_outcome = outcome;
            }
        }

        let n = scenario.clients as f64;
        println!(
            "{:<18} {:>6} nodes  {:>3} clients   {:>8.3} ms total   {:>8.1} req/s   monotone: {}   byte==: {}",
            scenario.name,
            scenario.dag.num_nodes(),
            scenario.clients,
            best * 1e3,
            n / best.max(1e-12),
            best_outcome.monotone,
            best_outcome.byte_identical,
        );
        reports.push(ScenarioReport {
            name: scenario.name.to_string(),
            nodes: scenario.dag.num_nodes(),
            edges: scenario.dag.num_edges(),
            clients: scenario.clients,
            total_seconds: best,
            requests_per_second: n / best.max(1e-12),
            mean_latency_seconds: best_outcome.latency_sum / n,
            incumbent_frames: best_outcome.incumbent_frames,
            incumbents_monotone: best_outcome.monotone,
            final_byte_identical: best_outcome.byte_identical,
        });
    }

    let report = Report {
        benchmark: "mbsp_serve daemon under concurrent streaming schedule clients: fan-out \
                    latency/throughput with monotone-incumbent and byte-identity flags"
            .to_string(),
        quick,
        scenarios: reports,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_serve_quick.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!("serving report -> {path}");
    assert!(
        report.scenarios.iter().all(|s| s.incumbents_monotone),
        "a client observed a non-monotone incumbent stream — see {path}"
    );
    assert!(
        report.scenarios.iter().all(|s| s.final_byte_identical),
        "a served schedule diverged from the direct library run — see {path}"
    );
}

#[derive(Default)]
struct FanOutOutcome {
    latency_sum: f64,
    incumbent_frames: usize,
    monotone: bool,
    byte_identical: bool,
}

/// One timed rep: fresh daemon, one register, `clients` concurrent streaming
/// schedule requests, graceful shutdown. Returns wall-clock and the merged
/// per-client observations.
fn run_fan_out(scenario: &Scenario, reference: &str) -> (f64, FanOutOutcome) {
    let state_dir = std::env::temp_dir().join(format!(
        "mbsp_bench_serve_{}_{}",
        std::process::id(),
        scenario.name
    ));
    let _ = std::fs::remove_dir_all(&state_dir);
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        state_dir: state_dir.clone(),
        workers: 0,
    })
    .expect("server starts");
    let addr = server.local_addr();

    let start = Instant::now();
    register(addr, &scenario.dag);
    let handles: Vec<_> = (0..scenario.clients)
        .map(|_| {
            std::thread::spawn(move || {
                let begin = Instant::now();
                let (frames, monotone, served) = stream_schedule(addr);
                (begin.elapsed().as_secs_f64(), frames, monotone, served)
            })
        })
        .collect();
    let mut outcome = FanOutOutcome {
        monotone: true,
        byte_identical: true,
        ..FanOutOutcome::default()
    };
    for handle in handles {
        let (latency, frames, monotone, served) = handle.join().expect("client thread");
        outcome.latency_sum += latency;
        outcome.incumbent_frames += frames;
        outcome.monotone &= monotone;
        outcome.byte_identical &= served == reference;
    }
    let seconds = start.elapsed().as_secs_f64();

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&state_dir);
    (seconds, outcome)
}

/// Uploads the scenario DAG via the binary codec (hex on the wire) so the
/// daemon schedules exactly the reference DAG.
fn register(addr: SocketAddr, dag: &mbsp_dag::CompDag) {
    let blob = mbsp_io::encode_dag(dag);
    let hex = mbsp_serve::encode_hex(&blob);
    let mut stream = TcpStream::connect(addr).expect("connect");
    let line = format!(
        r#"{{"id":1,"op":"register","instance":"bench","dag_hex":"{hex}","processors":4,"cache_factor":3.0,{BUDGET_JSON}}}"#
    );
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("recv");
    assert!(
        reply.contains(r#""event":"registered""#),
        "register failed: {reply}"
    );
}

/// One streaming schedule request; returns (incumbent frame count, stream was
/// monotone, served schedule JSON).
fn stream_schedule(addr: SocketAddr) -> (usize, bool, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let line = format!(
        r#"{{"id":2,"op":"schedule","instance":"bench","stream":true,"return_schedule":true,{BUDGET_JSON}}}"#
    );
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);

    let mut frames = 0usize;
    let mut monotone = true;
    let mut last_cost = f64::INFINITY;
    let mut next_sequence = 0u64;
    loop {
        let mut text = String::new();
        let n = reader.read_line(&mut text).expect("recv");
        assert!(n > 0, "server closed mid-stream");
        let frame: Value = serde_json::from_str(text.trim()).expect("valid frame");
        let field = |key: &str| frame.as_map().and_then(|m| map_get(m, key)).cloned();
        match field("event") {
            Some(Value::Str(e)) if e == "incumbent" => {
                frames += 1;
                monotone &= field("sequence") == Some(Value::UInt(next_sequence));
                next_sequence += 1;
                if let Some(Value::Float(cost)) = field("cost") {
                    monotone &= cost < last_cost;
                    last_cost = cost;
                } else {
                    monotone = false;
                }
            }
            Some(Value::Str(e)) if e == "done" => {
                monotone &= field("cost") == Some(Value::Float(last_cost));
                let served = field("schedule").expect("schedule embedded");
                return (
                    frames,
                    monotone,
                    serde_json::to_string(&served).expect("schedule serializes"),
                );
            }
            Some(Value::Str(e)) if e == "accepted" => {}
            other => panic!("unexpected frame {other:?}: {text}"),
        }
    }
}
