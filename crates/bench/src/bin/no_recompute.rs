//! Section 7.2, recomputation experiment: forbidding recomputation can increase the
//! optimal cost. The effect is demonstrated with the exact ILP on the Lemma 6.1
//! zipper gadget, where recomputing a short chain is cheaper than reloading a value
//! from slow memory whenever `g` exceeds the chain length.

use lp_solver::SolverLimits;
use mbsp_gen::constructions::lemma61_construction;
use mbsp_ilp::{ExactIlpScheduler, IlpConfig};
use mbsp_model::{Architecture, MbspInstance};
use std::time::Duration;

fn main() {
    println!("## Recomputation on the Lemma 6.1 gadget (P = 1, r = 4)\n");
    println!("| d | m | g | with recomputation | without | increase |");
    println!("|---:|---:|---:|---:|---:|---:|");
    // Small gadgets keep the exact ILP tractable; g is chosen larger than d so that
    // recomputation pays off, exactly as in the lemma.
    for (d, m, g) in [(2usize, 1usize, 4.0f64), (2, 2, 5.0)] {
        let dag = lemma61_construction(d, m);
        let arch = Architecture::new(1, 4.0, g, 0.0);
        let instance = MbspInstance::new(dag, arch);
        let steps = 4 * instance.dag().num_nodes();
        let limits = SolverLimits {
            max_nodes: 20_000,
            time_limit: Duration::from_secs(60),
            relative_gap: 1e-6,
        };
        let with = ExactIlpScheduler::with_config(IlpConfig {
            time_steps: steps,
            allow_recompute: true,
            limits,
        })
        .schedule(&instance);
        let without = ExactIlpScheduler::with_config(IlpConfig {
            time_steps: steps,
            allow_recompute: false,
            limits,
        })
        .schedule(&instance);
        match (with, without) {
            (Some((_, _, cw)), Some((_, _, cwo))) => {
                println!(
                    "| {d} | {m} | {g} | {cw:.0} | {cwo:.0} | {:.2}x |",
                    cwo / cw
                );
            }
            _ => println!("| {d} | {m} | {g} | (no solution within limits) | | |"),
        }
    }
    println!(
        "\nNote: the benchmark-scale schedulers never recompute (like the BSPg baseline), so\n\
         the effect is shown on the gadget where the paper's Lemma 6.1 proves it matters."
    );
}
