//! Lemmas 5.3 and 5.4: the synchronous and asynchronous optima differ. The binary
//! evaluates the two schedules discussed in each proof (the async-optimal and the
//! sync-optimal placement) under both cost models and prints the resulting factors,
//! which approach `P/2` (Lemma 5.3) and `4/3` (Lemma 5.4) as the heavy weight grows.

use mbsp_cache::{ClairvoyantPolicy, TwoStageScheduler};
use mbsp_gen::constructions::{lemma53_construction, lemma54_construction};
use mbsp_ilp::improver::canonical_bsp;
use mbsp_model::{async_cost, sync_cost, Architecture, ProcId};

fn main() {
    println!("## Lemma 5.3 — async-optimal schedule measured synchronously\n");
    println!("| P | Z | sync(async-opt) / sync(aligned) | bound P/2 |");
    println!("|---:|---:|---:|---:|");
    for p in [4usize, 6] {
        let z = 200.0;
        let dag = lemma53_construction(p, z);
        let arch = Architecture::new(p, 1e6, 0.0, 0.0);
        let converter = TwoStageScheduler::new();
        let policy = ClairvoyantPolicy::new();
        // Ladder i runs on processor pair (2i, 2i+1): this is both the async and the
        // sync assignment; the difference is purely in superstep alignment, which the
        // synchronous cost charges per superstep. We approximate the two alignments
        // by evaluating the same processor assignment under both cost models.
        let mut procs = vec![ProcId::new(0); dag.num_nodes()];
        let half = p / 2;
        // Node layout: node 0 is the source, then ladders of 2·half nodes each.
        let mut idx = 1usize;
        for ladder in 0..half {
            for _ in 0..half {
                procs[idx] = ProcId::new(2 * ladder);
                procs[idx + 1] = ProcId::new(2 * ladder + 1);
                idx += 2;
            }
        }
        let bsp = canonical_bsp(&dag, &arch, &procs);
        let schedule = converter.schedule(&dag, &arch, &bsp, &policy);
        schedule.validate(&dag, &arch).unwrap();
        let sync = sync_cost(&schedule, &dag, &arch).total;
        let asynchronous = async_cost(&schedule, &dag, &arch);
        println!(
            "| {p} | {z} | {:.2} | {:.1} |",
            sync / asynchronous,
            p as f64 / 2.0
        );
    }

    println!("\n## Lemma 5.4 — sync-optimal schedule measured asynchronously\n");
    let z = 500.0;
    let dag = lemma54_construction(z);
    let _arch = Architecture::new(5, 1e6, 0.0, 0.0);
    // The construction's two candidate schedules differ by a 4/3 factor in the
    // asynchronous model; the bound is approached as Z grows.
    println!(
        "| Z = {z}: async(sync-opt) / async(async-opt) approaches 4/3; construction has {} nodes |",
        dag.num_nodes()
    );
    println!("(see tests/paper_constructions.rs for the numeric verification)");
}
