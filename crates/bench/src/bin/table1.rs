//! Table 1: synchronous MBSP cost of the two-stage baseline vs. the holistic
//! (ILP-style) scheduler on every instance of the tiny dataset, with the paper's
//! base parameters (`P = 4`, `r = 3·r₀`, `g = 1`, `L = 10`).

use mbsp_bench::{render_table, run_tiny_comparison, ExperimentParams};

fn main() {
    let params = ExperimentParams::base();
    let rows = run_tiny_comparison(&params);
    println!(
        "{}",
        render_table(
            "Table 1 — baseline vs holistic scheduler (P=4, r=3·r0, g=1, L=10)",
            &rows
        )
    );
}
