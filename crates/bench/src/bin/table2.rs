//! Table 2: divide-and-conquer scheduler vs. the two-stage baseline on the
//! 10-instance sample of the larger ("small") dataset, with `r = 5·r₀`.

use mbsp_bench::{render_table, run_small_dataset_comparison, ExperimentParams};

fn main() {
    let params = ExperimentParams {
        cache_factor: 5.0,
        ..ExperimentParams::base()
    };
    let rows = run_small_dataset_comparison(&params);
    println!(
        "{}",
        render_table(
            "Table 2 — baseline vs divide-and-conquer (larger DAGs, r=5·r0)",
            &rows
        )
    );
}
