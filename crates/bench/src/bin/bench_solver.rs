//! Records the solver benchmark baseline: sparse revised simplex (warm-started
//! branch and bound) vs. the dense tableau oracle on representative MBSP ILP
//! instances, written to `BENCH_solver.json`.
//!
//! This is the benchmark trajectory of the repository: every future solver
//! change can be compared against the recorded numbers. Two instance families
//! are measured, matching the two roles the LP solver plays in the holistic
//! ILP path:
//!
//! * **exact MBSP formulations** (`MbspIlpBuilder`): the full pebbling ILP on
//!   small DAGs, warm-started from the two-stage baseline schedule as the
//!   paper warm-starts COPT;
//! * **acyclic bipartition ILPs** (`partition_ilp`-shaped): the cut-minimising
//!   binary programs the divide-and-conquer scheduler solves on every split,
//!   warm-started from the topological prefix split.
//!
//! Set `MBSP_BENCH_SOLVER_QUICK=1` for the CI smoke run (smaller instances,
//! one timing repetition, relaxed speedup reporting). The JSON schema is
//! `{benchmark, quick, instances: [{name, variables, constraints, dense_ms,
//! sparse_ms, speedup, objectives_match}], geomean_speedup}`.

use lp_solver::{BranchBoundSolver, LpProblem, MipStatus, SolverLimits};
use mbsp_cache::{ClairvoyantPolicy, TwoStageScheduler};
use mbsp_dag::CompDag;
use mbsp_gen::random::{random_layered_dag, RandomDagConfig};
use mbsp_ilp::{IlpConfig, MbspIlpBuilder};
use mbsp_model::{Architecture, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    variables: usize,
    constraints: usize,
    dense_ms: f64,
    sparse_ms: f64,
    speedup: f64,
    objectives_match: bool,
    sparse_nodes: usize,
    dense_nodes: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
}

/// One measured MIP: the same problem + warm start solved by the warm-started
/// sparse branch and bound and by the cold dense-relaxation baseline.
struct Case {
    name: String,
    problem: LpProblem,
    warm_start: Option<Vec<f64>>,
    limits: SolverLimits,
}

fn solver_limits(quick: bool) -> SolverLimits {
    SolverLimits {
        max_nodes: if quick { 2_000 } else { 20_000 },
        time_limit: Duration::from_secs(if quick { 20 } else { 120 }),
        relative_gap: 1e-6,
    }
}

/// The exact MBSP pebbling ILP on a small DAG, warm-started from the
/// two-stage baseline (greedy BSP + clairvoyant eviction), the role COPT plays
/// in the paper's exact experiments.
fn mbsp_case(name: &str, dag: CompDag, arch: Architecture, time_steps: usize, quick: bool) -> Case {
    let instance = MbspInstance::new(dag, arch);
    let config = IlpConfig {
        time_steps,
        allow_recompute: true,
        limits: solver_limits(quick),
    };
    let builder = MbspIlpBuilder::build(&instance, &config);
    let baseline = GreedyBspScheduler::new().schedule(instance.dag(), instance.arch());
    let two_stage = TwoStageScheduler::new().schedule(
        instance.dag(),
        instance.arch(),
        &baseline,
        &ClairvoyantPolicy::new(),
    );
    let warm_start = builder.warm_start_from_schedule(instance.dag(), instance.arch(), &two_stage);
    Case {
        name: name.to_string(),
        warm_start,
        limits: config.limits,
        problem: builder.problem,
    }
}

/// The acyclic-bipartition ILP of the divide-and-conquer path, warm-started
/// from the topological prefix split. Built by the same
/// [`mbsp_ilp::bipartition_model`] the production scheduler uses, so the
/// recorded benchmark cannot drift from the real formulation.
fn bipartition_case(name: &str, dag: &CompDag, quick: bool) -> Case {
    let (problem, warm) = mbsp_ilp::bipartition_model(dag, 1.0 / 3.0);
    Case {
        name: name.to_string(),
        problem,
        warm_start: Some(warm),
        limits: solver_limits(quick),
    }
}

/// Median-of-`reps` wall-clock of a solve.
fn time_solve(case: &Case, dense: bool, reps: usize) -> (f64, f64, MipStatus, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut objective = f64::INFINITY;
    let mut status = MipStatus::LimitReached;
    let mut nodes = 0;
    for _ in 0..reps {
        let mut solver = BranchBoundSolver::with_limits(case.limits).with_dense_relaxation(dense);
        if let Some(ws) = &case.warm_start {
            solver = solver.with_warm_start(ws.clone());
        }
        let t0 = Instant::now();
        let solution = solver.solve(&case.problem);
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        objective = solution.objective;
        status = solution.status;
        nodes = solution.nodes_explored;
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], objective, status, nodes)
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_SOLVER_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);
    let reps = if quick { 1 } else { 3 };

    let mut cases = Vec::new();
    // Exact pebbling ILPs (the paper's exact-solver role).
    let path = CompDag::from_edges(
        "path4",
        vec![mbsp_dag::graph::NodeWeights::unit(); 4],
        &[(0, 1), (1, 2), (2, 3)],
    )
    .unwrap();
    cases.push(mbsp_case(
        "mbsp_ilp/path4_p1",
        path,
        Architecture::new(1, 3.0, 1.0, 0.0),
        8,
        quick,
    ));
    if !quick {
        let diamond = CompDag::from_edges(
            "diamond",
            vec![mbsp_dag::graph::NodeWeights::unit(); 4],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        cases.push(mbsp_case(
            "mbsp_ilp/diamond_p2",
            diamond,
            Architecture::new(2, 3.0, 1.0, 0.0),
            6,
            quick,
        ));
    }
    // Bipartition ILPs (the divide-and-conquer role).
    let layered = random_layered_dag(
        &RandomDagConfig {
            layers: if quick { 4 } else { 5 },
            width: if quick { 5 } else { 7 },
            edge_probability: 0.3,
            ..Default::default()
        },
        7,
    );
    cases.push(bipartition_case(
        if quick {
            "bipartition/layered20"
        } else {
            "bipartition/layered35"
        },
        &layered,
        quick,
    ));

    let mut reports = Vec::new();
    for case in &cases {
        let (sparse_ms, sparse_obj, sparse_status, sparse_nodes) = time_solve(case, false, reps);
        let (dense_ms, dense_obj, dense_status, dense_nodes) = time_solve(case, true, reps);
        let objectives_match = sparse_status == dense_status
            && (!matches!(sparse_status, MipStatus::Optimal | MipStatus::Feasible)
                || (sparse_obj - dense_obj).abs() <= 1e-5 * (1.0 + dense_obj.abs()));
        let speedup = dense_ms / sparse_ms.max(1e-6);
        println!(
            "{:<28} sparse {:>9.2} ms ({} nodes)   dense {:>9.2} ms ({} nodes)   speedup {:>6.1}x   match: {}",
            case.name, sparse_ms, sparse_nodes, dense_ms, dense_nodes, speedup, objectives_match
        );
        reports.push(InstanceReport {
            name: case.name.clone(),
            variables: case.problem.num_variables(),
            constraints: case.problem.num_constraints(),
            dense_ms,
            sparse_ms,
            speedup,
            objectives_match,
            sparse_nodes,
            dense_nodes,
        });
    }

    let geomean_speedup = if reports.is_empty() {
        1.0
    } else {
        (reports
            .iter()
            .map(|r| r.speedup.max(1e-9).ln())
            .sum::<f64>()
            / reports.len() as f64)
            .exp()
    };
    let report = Report {
        benchmark: "lp_solver: warm-started sparse revised simplex vs dense tableau".to_string(),
        quick,
        instances: reports,
        geomean_speedup,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_solver_quick.json"
    } else {
        "BENCH_solver.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!("geomean speedup: {geomean_speedup:.1}x -> {path}");
    assert!(
        report.instances.iter().all(|r| r.objectives_match),
        "sparse and dense solvers disagreed — see BENCH_solver.json"
    );
}
