//! Records the improver benchmark baseline: the incremental evaluation engine
//! (arena-backed conversion + incremental cost deltas) vs. the pre-engine
//! clone-and-recost reference path, written to `BENCH_improver.json`.
//!
//! Both paths run the *same* seeded search at the same move budget — the engine
//! is operation-identical to the reference, so the two trajectories visit the
//! same candidates and end at the same schedule; only the evaluation machinery
//! differs. The recorded metric is candidate evaluations per second, plus the
//! final holistic cost of each path (which must agree). A third column records
//! the engine with its parallel evaluation workers enabled (the production
//! configuration), on the same move budget.
//!
//! Set `MBSP_BENCH_IMPROVER_QUICK=1` for the CI smoke run (fewer instances, a
//! smaller move budget, and a separate output file). The JSON schema is
//! `{benchmark, quick, instances: [{name, nodes, evaluations, reference_evals_per_sec,
//! engine_evals_per_sec, speedup, parallel_workers, parallel_evals_per_sec,
//! parallel_speedup, engine_cost, reference_cost, costs_match}],
//! geomean_speedup, geomean_parallel_speedup}`.

use mbsp_gen::NamedInstance;
use mbsp_ilp::{EvalPath, HolisticConfig, HolisticScheduler};
use mbsp_model::{Architecture, CostModel, MbspInstance};
use mbsp_sched::{BspScheduler, GreedyBspScheduler};
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Serialize)]
struct InstanceReport {
    name: String,
    nodes: usize,
    evaluations: u64,
    reference_evals_per_sec: f64,
    engine_evals_per_sec: f64,
    speedup: f64,
    parallel_workers: usize,
    parallel_evals_per_sec: f64,
    parallel_speedup: f64,
    engine_cost: f64,
    reference_cost: f64,
    costs_match: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmark: String,
    quick: bool,
    instances: Vec<InstanceReport>,
    geomean_speedup: f64,
    geomean_parallel_speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

fn main() {
    // "0", "" and "false" disable quick mode (the documented contract is `=1`).
    let quick = std::env::var("MBSP_BENCH_IMPROVER_QUICK")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false);

    // The search budget is fixed in moves, not wall-clock: the time limit is far
    // above what either path needs, so both trajectories run the identical
    // candidate sequence to completion.
    let config = HolisticConfig {
        cost_model: CostModel::Synchronous,
        max_rounds: if quick { 4 } else { 10 },
        moves_per_round: if quick { 30 } else { 90 },
        time_limit: Duration::from_secs(600),
        seed: 0x5EED,
        workers: 1,
    };
    let parallel_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel_config = HolisticConfig {
        workers: parallel_workers,
        ..config
    };

    // The tiny dataset plus, in full mode, a slice of the small dataset: the
    // engine exists for benchmark-sized instances, so the recorded baseline
    // must include them (the quick smoke run stays on the tiny instances).
    let dataset = mbsp_gen::tiny_dataset(42);
    let take = if quick { 3 } else { dataset.len() };
    let mut named: Vec<NamedInstance> = dataset.into_iter().take(take).collect();
    if !quick {
        named.extend(mbsp_gen::small_dataset_sample(42).into_iter().take(4));
    }
    let greedy = GreedyBspScheduler::new();

    let mut reports = Vec::new();
    for inst in &named {
        let instance = MbspInstance::with_cache_factor(
            inst.dag.clone(),
            Architecture::paper_default(0.0),
            3.0,
        );
        let baseline = greedy.schedule(instance.dag(), instance.arch());

        // Identical trajectories make the searches repeatable, so take the
        // fastest of `reps` runs per path (the standard defence against
        // scheduler interference on shared machines; bench_solver takes the
        // median of 3 for the same reason).
        let reps = if quick { 1 } else { 5 };
        let best_of = |config: HolisticConfig, path: EvalPath| {
            let scheduler = HolisticScheduler::with_config(config);
            let mut best = None;
            for _ in 0..reps {
                let (schedule, stats) =
                    scheduler.schedule_with_stats(&instance, &baseline, &[], path);
                let faster = match &best {
                    None => true,
                    Some((_, prev)) => {
                        let prev: &mbsp_ilp::SearchStats = prev;
                        stats.elapsed < prev.elapsed
                    }
                };
                if faster {
                    best = Some((schedule, stats));
                }
            }
            best.expect("at least one repetition")
        };
        let (ref_schedule, ref_stats) = best_of(config, EvalPath::Reference);
        let (eng_schedule, eng_stats) = best_of(config, EvalPath::Incremental);
        let (par_schedule, par_stats) = best_of(parallel_config, EvalPath::Incremental);

        ref_schedule
            .validate(instance.dag(), instance.arch())
            .expect("reference schedule");
        eng_schedule
            .validate(instance.dag(), instance.arch())
            .expect("engine schedule");
        par_schedule
            .validate(instance.dag(), instance.arch())
            .expect("parallel schedule");

        let ref_eps = ref_stats.evaluations as f64 / ref_stats.elapsed.as_secs_f64().max(1e-9);
        let eng_eps = eng_stats.evaluations as f64 / eng_stats.elapsed.as_secs_f64().max(1e-9);
        let par_eps = par_stats.evaluations as f64 / par_stats.elapsed.as_secs_f64().max(1e-9);
        let costs_match = (eng_stats.final_cost - ref_stats.final_cost).abs()
            <= 1e-9 * (1.0 + ref_stats.final_cost.abs())
            && (par_stats.final_cost - ref_stats.final_cost).abs()
                <= 1e-9 * (1.0 + ref_stats.final_cost.abs());
        println!(
            "{:<16} {:>5} nodes  {:>6} evals   reference {:>8.0}/s   engine {:>8.0}/s ({:>5.1}x)   parallel[{}] {:>8.0}/s ({:>5.1}x)   match: {}",
            inst.name,
            instance.dag().num_nodes(),
            eng_stats.evaluations,
            ref_eps,
            eng_eps,
            eng_eps / ref_eps.max(1e-9),
            parallel_workers,
            par_eps,
            par_eps / ref_eps.max(1e-9),
            costs_match
        );
        reports.push(InstanceReport {
            name: inst.name.clone(),
            nodes: instance.dag().num_nodes(),
            evaluations: eng_stats.evaluations,
            reference_evals_per_sec: ref_eps,
            engine_evals_per_sec: eng_eps,
            speedup: eng_eps / ref_eps.max(1e-9),
            parallel_workers,
            parallel_evals_per_sec: par_eps,
            parallel_speedup: par_eps / ref_eps.max(1e-9),
            engine_cost: eng_stats.final_cost,
            reference_cost: ref_stats.final_cost,
            costs_match,
        });
    }

    let geomean_speedup = geomean(reports.iter().map(|r| r.speedup));
    let geomean_parallel_speedup = geomean(reports.iter().map(|r| r.parallel_speedup));
    let report = Report {
        benchmark: "improver: incremental evaluation engine vs clone-and-recost reference"
            .to_string(),
        quick,
        instances: reports,
        geomean_speedup,
        geomean_parallel_speedup,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Quick (CI smoke) runs must not clobber the recorded full baseline.
    let path = if quick {
        "BENCH_improver_quick.json"
    } else {
        "BENCH_improver.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path} is writable: {e}"));
    println!(
        "geomean speedup: {geomean_speedup:.1}x serial, {geomean_parallel_speedup:.1}x parallel -> {path}"
    );
    assert!(
        report.instances.iter().all(|r| r.costs_match),
        "engine and reference paths disagreed on the final cost — see {path}"
    );
}
