//! The CI bench-regression gate: parses the quick-mode `BENCH_*_quick.json`
//! files that the eight benchmark smokes (`bench_solver`, `bench_improver`,
//! `bench_dag`, `bench_shard`, `bench_delta`, `bench_pool`, `bench_io`,
//! `bench_serve` with their `MBSP_BENCH_*_QUICK=1` contracts)
//! wrote earlier in the run, and **fails** if any fast-vs-reference speedup
//! dropped below 1.0 or any agreement flag shows the compared paths diverged.
//! Every violation names the offending file, instance and metric; a missing or
//! unreadable quick-JSON is itself a violation. Only the [`REGISTERED`] report
//! list is gated: a `BENCH_*_quick.json` in the working directory that no gate
//! knows about is reported as a **named warning** (a new smoke was added
//! without registering it here, or a stale artifact is lying around) rather
//! than silently ignored or spuriously failed.
//! (The pool and shard smokes are gated on their agreement flags only: on the
//! tiny smoke instances the pool-vs-scoped-spawn margin is within timing noise
//! and the weighted sharding's partition-ILP overhead is not amortised, so
//! their speedup bars are asserted by the full `bench_pool` / `bench_shard`
//! runs instead. The shard smoke must cover both sharding modes — legacy
//! topological and weighted-iterated — and additionally gates the weighted
//! mode's equal-or-better-than-legacy flag. The io smoke gates checkpoint
//! byte-identity and corruption rejection; its 50 ms encode/decode budget is
//! production-scale by definition, so it is asserted by the full `bench_io`
//! run on the 100k-node instances.)
//!
//! This is the last CI step (`cargo run -p mbsp_bench --bin bench_check`), so a
//! performance regression that makes an optimised path slower than its
//! reference oracle — or a silent behavioural divergence that slips past the
//! in-binary assertions — turns the build red instead of rotting quietly.
//! Locally it runs as part of `make ci` / `just ci` after the smokes.

use serde::Deserialize;
use std::process::ExitCode;

/// The per-instance subset shared by every benchmark report: a fast-vs-reference
/// speedup plus the benchmark-specific agreement flags (deserialization reads
/// fields by name, so each report's extra fields are simply ignored).
#[derive(Debug, Deserialize)]
struct SolverInstance {
    name: String,
    speedup: f64,
    objectives_match: bool,
}

#[derive(Debug, Deserialize)]
struct ImproverInstance {
    name: String,
    speedup: f64,
    costs_match: bool,
}

#[derive(Debug, Deserialize)]
struct DagInstance {
    name: String,
    speedup: f64,
    costs_match: bool,
}

/// Flags shared by both sharded modes (`legacy` topological and `weighted`
/// iterated) in the `bench_shard` report.
#[derive(Debug, Deserialize)]
struct ShardModeGate {
    identical_across_workers: bool,
    not_worse_than_baseline: bool,
}

#[derive(Debug, Deserialize)]
struct ShardWeightedGate {
    base: ShardModeGate,
    equal_or_better_than_legacy: Option<bool>,
}

#[derive(Debug, Deserialize)]
struct ShardInstance {
    name: String,
    not_worse_than_baseline: bool,
    identical_across_workers: bool,
    /// `null` when the smoke ran in `weighted`-only mode.
    legacy: Option<ShardModeGate>,
    /// `null` when the smoke ran in `legacy`-only mode.
    weighted: Option<ShardWeightedGate>,
}

#[derive(Debug, Deserialize)]
struct DeltaInstance {
    name: String,
    speedup: f64,
    not_worse_than_incumbent: bool,
    identical_across_workers: bool,
}

#[derive(Debug, Deserialize)]
struct SolverReport {
    quick: bool,
    instances: Vec<SolverInstance>,
    geomean_speedup: f64,
}

#[derive(Debug, Deserialize)]
struct ImproverReport {
    quick: bool,
    instances: Vec<ImproverInstance>,
    geomean_speedup: f64,
}

#[derive(Debug, Deserialize)]
struct DagReport {
    quick: bool,
    instances: Vec<DagInstance>,
    geomean_speedup: f64,
}

#[derive(Debug, Deserialize)]
struct ShardReport {
    quick: bool,
    instances: Vec<ShardInstance>,
    geomean_speedup: f64,
}

#[derive(Debug, Deserialize)]
struct DeltaReport {
    quick: bool,
    instances: Vec<DeltaInstance>,
    geomean_speedup: f64,
}

#[derive(Debug, Deserialize)]
struct PoolInstance {
    name: String,
    costs_match: bool,
    identical_across_workers: bool,
}

#[derive(Debug, Deserialize)]
struct PoolKernel {
    name: String,
    results_match: bool,
}

#[derive(Debug, Deserialize)]
struct PoolImprover {
    name: String,
    costs_match: bool,
}

#[derive(Debug, Deserialize)]
struct PoolReport {
    quick: bool,
    instances: Vec<PoolInstance>,
    geomean_speedup: f64,
    kernels: Vec<PoolKernel>,
    improver: Vec<PoolImprover>,
}

#[derive(Debug, Deserialize)]
struct IoInstance {
    name: String,
    encode_seconds: f64,
    decode_seconds: f64,
    byte_identical: bool,
    corrupt_rejected: bool,
}

#[derive(Debug, Deserialize)]
struct IoReport {
    quick: bool,
    instances: Vec<IoInstance>,
}

#[derive(Debug, Deserialize)]
struct ServeScenario {
    name: String,
    total_seconds: f64,
    incumbents_monotone: bool,
    final_byte_identical: bool,
}

#[derive(Debug, Deserialize)]
struct ServeReport {
    quick: bool,
    scenarios: Vec<ServeScenario>,
}

/// Every quick report this gate knows how to check. A `BENCH_*_quick.json`
/// not on this list produces a named warning, never a silent pass.
const REGISTERED: [&str; 8] = [
    "BENCH_solver_quick.json",
    "BENCH_improver_quick.json",
    "BENCH_dag_quick.json",
    "BENCH_shard_quick.json",
    "BENCH_delta_quick.json",
    "BENCH_pool_quick.json",
    "BENCH_io_quick.json",
    "BENCH_serve_quick.json",
];

/// Collected gate violations; empty means the gate is green.
#[derive(Default)]
struct Gate {
    problems: Vec<String>,
    checked: usize,
}

impl Gate {
    fn parse<T: Deserialize>(&mut self, path: &str) -> Option<T> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                self.problems.push(format!(
                    "{path}: missing or unreadable ({e}) — run the bench smokes first"
                ));
                return None;
            }
        };
        match serde_json::from_str::<T>(&text) {
            Ok(report) => Some(report),
            Err(e) => {
                self.problems.push(format!("{path}: failed to parse: {e}"));
                None
            }
        }
    }

    fn require(&mut self, path: &str, name: &str, what: &str, ok: bool) {
        self.checked += 1;
        if !ok {
            self.problems.push(format!("{path}: {name}: {what}"));
        }
    }

    fn check_common(&mut self, path: &str, quick: bool, name: &str, speedup: f64) {
        self.require(
            path,
            name,
            "quick flag is false — the smoke must run with the quick-mode env var",
            quick,
        );
        self.require(
            path,
            name,
            &format!("fast-vs-reference speedup {speedup:.3}x dropped below 1.0"),
            speedup >= 1.0,
        );
    }
}

fn main() -> ExitCode {
    let mut gate = Gate::default();

    if let Some(r) = gate.parse::<SolverReport>("BENCH_solver_quick.json") {
        let path = "BENCH_solver_quick.json";
        for i in &r.instances {
            gate.check_common(path, r.quick, &i.name, i.speedup);
            gate.require(
                path,
                &i.name,
                "dense and sparse objectives diverged",
                i.objectives_match,
            );
        }
        println!(
            "solver   geomean {:>7.2}x over {} instances",
            r.geomean_speedup,
            r.instances.len()
        );
    }
    if let Some(r) = gate.parse::<ImproverReport>("BENCH_improver_quick.json") {
        let path = "BENCH_improver_quick.json";
        for i in &r.instances {
            gate.check_common(path, r.quick, &i.name, i.speedup);
            gate.require(
                path,
                &i.name,
                "engine and reference costs diverged",
                i.costs_match,
            );
        }
        println!(
            "improver geomean {:>7.2}x over {} instances",
            r.geomean_speedup,
            r.instances.len()
        );
    }
    if let Some(r) = gate.parse::<DagReport>("BENCH_dag_quick.json") {
        let path = "BENCH_dag_quick.json";
        for i in &r.instances {
            gate.check_common(path, r.quick, &i.name, i.speedup);
            gate.require(
                path,
                &i.name,
                "fast and reference pipelines diverged",
                i.costs_match,
            );
        }
        println!(
            "dag      geomean {:>7.2}x over {} instances",
            r.geomean_speedup,
            r.instances.len()
        );
    }
    if let Some(r) = gate.parse::<ShardReport>("BENCH_shard_quick.json") {
        // Like the pool smoke, the shard smoke is gated on its agreement and
        // never-worse flags only: the weighted mode's partition-ILP overhead
        // is not amortised on the tiny smoke instances, so its speedup bar is
        // asserted by the full `bench_shard` run instead.
        let path = "BENCH_shard_quick.json";
        gate.require(
            path,
            "report",
            "quick flag is false — the smoke must run with the quick-mode env var",
            r.quick,
        );
        for i in &r.instances {
            gate.require(
                path,
                &i.name,
                "sharded final cost fell behind the shared baseline incumbent",
                i.not_worse_than_baseline,
            );
            gate.require(
                path,
                &i.name,
                "sharded search diverged across worker counts",
                i.identical_across_workers,
            );
            gate.require(
                path,
                &i.name,
                "CI smoke must exercise BOTH sharding modes (run with \
                 MBSP_BENCH_SHARD_MODE=both or unset)",
                i.legacy.is_some() && i.weighted.is_some(),
            );
            if let Some(l) = &i.legacy {
                gate.require(
                    path,
                    &i.name,
                    "legacy/topo mode fell behind the shared baseline incumbent",
                    l.not_worse_than_baseline,
                );
                gate.require(
                    path,
                    &i.name,
                    "legacy/topo mode diverged across worker counts",
                    l.identical_across_workers,
                );
            }
            if let Some(w) = &i.weighted {
                gate.require(
                    path,
                    &i.name,
                    "weighted-iterated mode fell behind the shared baseline incumbent",
                    w.base.not_worse_than_baseline,
                );
                gate.require(
                    path,
                    &i.name,
                    "weighted-iterated mode diverged across worker counts",
                    w.base.identical_across_workers,
                );
                gate.require(
                    path,
                    &i.name,
                    "weighted-iterated mode fell behind the legacy sharding at equal \
                     candidate budget",
                    w.equal_or_better_than_legacy.unwrap_or(true),
                );
            }
        }
        println!(
            "shard    geomean {:>7.2}x over {} instances (both sharding modes gated)",
            r.geomean_speedup,
            r.instances.len()
        );
    }
    if let Some(r) = gate.parse::<DeltaReport>("BENCH_delta_quick.json") {
        let path = "BENCH_delta_quick.json";
        for i in &r.instances {
            gate.check_common(path, r.quick, &i.name, i.speedup);
            gate.require(
                path,
                &i.name,
                "dirty-cone repair regressed past its stale incumbent",
                i.not_worse_than_incumbent,
            );
            gate.require(
                path,
                &i.name,
                "dirty-cone repair diverged across worker counts",
                i.identical_across_workers,
            );
        }
        println!(
            "delta    geomean {:>7.2}x over {} instances",
            r.geomean_speedup,
            r.instances.len()
        );
    }

    if let Some(r) = gate.parse::<PoolReport>("BENCH_pool_quick.json") {
        let path = "BENCH_pool_quick.json";
        gate.require(
            path,
            "report",
            "quick flag is false — the smoke must run with the quick-mode env var",
            r.quick,
        );
        for i in &r.instances {
            gate.require(
                path,
                &i.name,
                "pool and scoped-spawn engine batches diverged",
                i.costs_match,
            );
            gate.require(
                path,
                &i.name,
                "pool batches diverged across worker counts",
                i.identical_across_workers,
            );
        }
        for k in &r.kernels {
            gate.require(
                path,
                &k.name,
                "chunked kernel diverged from its scalar oracle",
                k.results_match,
            );
        }
        for i in &r.improver {
            gate.require(
                path,
                &i.name,
                "segment-tree and eager merge passes diverged",
                i.costs_match,
            );
        }
        println!(
            "pool     geomean {:>7.2}x over {} instances",
            r.geomean_speedup,
            r.instances.len()
        );
    }

    if let Some(r) = gate.parse::<IoReport>("BENCH_io_quick.json") {
        let path = "BENCH_io_quick.json";
        gate.require(
            path,
            "report",
            "quick flag is false — the smoke must run with the quick-mode env var",
            r.quick,
        );
        for i in &r.instances {
            gate.require(
                path,
                &i.name,
                "restored session re-checkpointed to different bytes",
                i.byte_identical,
            );
            gate.require(
                path,
                &i.name,
                "a corrupted checkpoint was accepted",
                i.corrupt_rejected,
            );
            // No wall-clock bar on the smoke (tiny instances, noisy runners) —
            // the 50 ms encode/decode budget is asserted by the full
            // `bench_io` run on the 100k-node instances. The timings just have
            // to be real measurements.
            gate.require(
                path,
                &i.name,
                "checkpoint codec timings are not finite positive seconds",
                i.encode_seconds > 0.0
                    && i.encode_seconds.is_finite()
                    && i.decode_seconds > 0.0
                    && i.decode_seconds.is_finite(),
            );
        }
        println!(
            "io       byte-identical over {} instances",
            r.instances.len()
        );
    }

    if let Some(r) = gate.parse::<ServeReport>("BENCH_serve_quick.json") {
        // The serve smoke is gated on its determinism flags only: fan-out
        // wall-clock on tiny instances is dominated by session spin-up, so
        // the latency story belongs to the full `bench_serve` run.
        let path = "BENCH_serve_quick.json";
        gate.require(
            path,
            "report",
            "quick flag is false — the smoke must run with the quick-mode env var",
            r.quick,
        );
        for s in &r.scenarios {
            gate.require(
                path,
                &s.name,
                "a client observed a non-monotone incumbent stream",
                s.incumbents_monotone,
            );
            gate.require(
                path,
                &s.name,
                "a served schedule diverged from the direct library run",
                s.final_byte_identical,
            );
            gate.require(
                path,
                &s.name,
                "fan-out timing is not finite positive seconds",
                s.total_seconds > 0.0 && s.total_seconds.is_finite(),
            );
        }
        println!(
            "serve    byte-identical over {} fan-out scenarios",
            r.scenarios.len()
        );
    }

    // Anything matching the quick-report shape that no gate above knows about
    // gets called out by name — a forgotten registration must not pass green.
    let mut warnings = 0usize;
    if let Ok(dir) = std::fs::read_dir(".") {
        let mut extras: Vec<String> = dir
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| {
                n.starts_with("BENCH_")
                    && n.ends_with("_quick.json")
                    && !REGISTERED.contains(&n.as_str())
            })
            .collect();
        extras.sort();
        for name in extras {
            warnings += 1;
            eprintln!(
                "bench_check: WARNING: {name} is not a registered quick report — \
                 register it in bench_check's REGISTERED list (or delete the stale file)"
            );
        }
    }

    if gate.problems.is_empty() {
        println!(
            "bench_check: {} checks passed across {} registered quick reports ({} warning(s))",
            gate.checked,
            REGISTERED.len(),
            warnings
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_check: {} violation(s):", gate.problems.len());
        for p in &gate.problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}
