//! Figure 4: the distribution of per-instance cost-reduction ratios (holistic /
//! baseline) for the base setting and the four variations shown in the paper
//! (`r = 5·r₀`, `P = 8`, `L = 0`, asynchronous). Prints a textual box-plot summary
//! (min / quartiles / max) per setting, which is the information the figure plots.

use mbsp_bench::{run_tiny_comparison, ExperimentParams};
use mbsp_model::CostModel;

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn main() {
    let base = ExperimentParams::base();
    let settings: Vec<(&str, ExperimentParams)> = vec![
        ("base", base),
        (
            "r = 5·r0",
            ExperimentParams {
                cache_factor: 5.0,
                ..base
            },
        ),
        (
            "P = 8",
            ExperimentParams {
                processors: 8,
                ..base
            },
        ),
        (
            "L = 0",
            ExperimentParams {
                latency: 0.0,
                ..base
            },
        ),
        (
            "async",
            ExperimentParams {
                latency: 0.0,
                cost_model: CostModel::Asynchronous,
                ..base
            },
        ),
    ];
    println!("## Figure 4 — distribution of cost-reduction ratios per setting\n");
    println!("| setting | min | q1 | median | q3 | max | geo-mean |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for (name, params) in settings {
        let rows = run_tiny_comparison(&params);
        let mut ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let geo = mbsp_bench::geometric_mean_ratio(&rows);
        println!(
            "| {name} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            quantile(&ratios, 0.0),
            quantile(&ratios, 0.25),
            quantile(&ratios, 0.5),
            quantile(&ratios, 0.75),
            quantile(&ratios, 1.0),
            geo
        );
    }
}
